package experiments

import (
	"strings"
	"testing"
)

// TestRegistryAllExperiments drives every registered experiment end to end
// at a drastically reduced scale, covering each runner and table renderer.
func TestRegistryAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry sweep skipped in -short mode")
	}
	reg := Registry()
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			var sb strings.Builder
			cfg := RunConfig{Seed: 3, Quick: true, Lookups: 300}
			if err := reg[id].Run(&sb, cfg); err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			out := sb.String()
			if len(out) < 40 {
				t.Fatalf("%s produced implausibly short output:\n%s", id, out)
			}
			if !strings.Contains(out, "\n") {
				t.Fatalf("%s output has no rows", id)
			}
		})
	}
}

// TestRunConfigLookups checks the workload-scaling precedence.
func TestRunConfigLookups(t *testing.T) {
	if got := (RunConfig{}).lookups(100, 10); got != 100 {
		t.Errorf("default = %d, want full 100", got)
	}
	if got := (RunConfig{Quick: true}).lookups(100, 10); got != 10 {
		t.Errorf("quick = %d, want 10", got)
	}
	if got := (RunConfig{Quick: true, Lookups: 55}).lookups(100, 10); got != 55 {
		t.Errorf("override = %d, want 55", got)
	}
}

// TestBuilders checks every DHT constructor the harness uses.
func TestBuilders(t *testing.T) {
	for _, name := range DHTNames {
		net, err := Build(name, 100, 5)
		if err != nil {
			t.Fatalf("Build(%s): %v", name, err)
		}
		if net.Size() != 100 {
			t.Errorf("Build(%s) size = %d", name, net.Size())
		}
		netIn, err := BuildIn(name, 2048, 50, 5)
		if err != nil {
			t.Fatalf("BuildIn(%s): %v", name, err)
		}
		if netIn.Size() != 50 {
			t.Errorf("BuildIn(%s) size = %d", name, netIn.Size())
		}
	}
	if _, err := Build("nonesuch", 10, 1); err == nil {
		t.Error("Build of unknown DHT should fail")
	}
	if _, err := BuildIn("nonesuch", 2048, 10, 1); err == nil {
		t.Error("BuildIn of unknown DHT should fail")
	}
	if _, err := BuildIn("cycloid-7", 1000, 10, 1); err == nil {
		t.Error("BuildIn with a space that is not d*2^d should fail")
	}
}

// TestSpaceHelpers checks the ID-space sizing helpers.
func TestSpaceHelpers(t *testing.T) {
	if d := dimForSpace(2048); d != 8 {
		t.Errorf("dimForSpace(2048) = %d, want 8", d)
	}
	if d := dimForSpace(24); d != 3 {
		t.Errorf("dimForSpace(24) = %d, want 3", d)
	}
	if d := dimForSpace(1000); d != -1 {
		t.Errorf("dimForSpace(1000) = %d, want -1", d)
	}
	if b := bitsForSpace(2048); b != 11 {
		t.Errorf("bitsForSpace(2048) = %d, want 11", b)
	}
	if b := ringBitsFor(2049); b != 12 {
		t.Errorf("ringBitsFor(2049) = %d, want 12", b)
	}
}
