package experiments

import (
	"fmt"
	"math/rand"

	"cycloid/internal/cycloid"
	"cycloid/internal/stats"
	"cycloid/internal/workload"
)

// AblationLeafSetOptions parameterizes the leaf-set width ablation: the
// 7- vs 11-entry trade-off the paper evaluates, extended to wider sets.
type AblationLeafSetOptions struct {
	// Halves are the leaf-set half-widths to sweep (1 = 7 entries,
	// 2 = 11, 3 = 15, 4 = 19).
	Halves []int
	// Dims are the Cycloid dimensions, default {6, 7, 8}.
	Dims []int
	// LookupBudget caps lookups per network.
	LookupBudget int
	Seed         int64
}

func (o *AblationLeafSetOptions) defaults() {
	if len(o.Halves) == 0 {
		o.Halves = []int{1, 2, 3, 4}
	}
	if len(o.Dims) == 0 {
		o.Dims = []int{6, 7, 8}
	}
	if o.LookupBudget == 0 {
		o.LookupBudget = 100000
	}
}

// RunAblationLeafSet sweeps the Cycloid leaf-set width and reports mean
// path lengths, quantifying the state-vs-hops trade-off of Section 3.2.
func RunAblationLeafSet(o AblationLeafSetOptions) (Table, error) {
	o.defaults()
	t := Table{
		Caption: "Ablation: Cycloid leaf-set width vs. mean path length",
		Header:  []string{"n"},
	}
	for _, h := range o.Halves {
		t.Header = append(t.Header, fmt.Sprintf("%d entries", cycloid.Config{Dim: 8, LeafHalf: h}.TableEntries()))
	}
	for _, d := range o.Dims {
		n := d << uint(d)
		row := []string{fmt.Sprintf("%d", n)}
		for _, h := range o.Halves {
			net, err := cycloid.NewComplete(cycloid.Config{Dim: d, LeafHalf: h})
			if err != nil {
				return Table{}, err
			}
			rng := rand.New(rand.NewSource(o.Seed + int64(d*10+h)))
			var paths stats.Sample
			lookups := o.LookupBudget / 4
			workload.RandomPairs(net, lookups, rng, func(l workload.Lookup) {
				r := net.Lookup(l.Src, l.Key)
				if !r.Failed {
					paths.AddInt(r.PathLength())
				}
			})
			row = append(row, f2(paths.Mean()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// AblationStabilizationOptions parameterizes the stabilization-interval
// ablation under churn.
type AblationStabilizationOptions struct {
	// Intervals are the per-node stabilization periods in seconds.
	Intervals []float64
	// Rate is the join/leave rate, default 0.20/s.
	Rate float64
	// Nodes and Lookups as in ChurnOptions (smaller defaults here).
	Nodes   int
	Lookups int
	Seed    int64
}

func (o *AblationStabilizationOptions) defaults() {
	if len(o.Intervals) == 0 {
		o.Intervals = []float64{10, 30, 60, 120}
	}
	if o.Rate == 0 {
		o.Rate = 0.20
	}
	if o.Nodes == 0 {
		o.Nodes = 2048
	}
	if o.Lookups == 0 {
		o.Lookups = 4000
	}
}

// RunAblationStabilization sweeps the stabilization interval for the
// 7-entry Cycloid at a fixed churn rate: longer intervals leave stale
// routing tables alive longer, trading maintenance traffic for timeouts.
func RunAblationStabilization(o AblationStabilizationOptions) (Table, error) {
	o.defaults()
	t := Table{
		Caption: fmt.Sprintf("Ablation: Cycloid stabilization interval at churn rate %.2f/s", o.Rate),
		Header:  []string{"interval (s)", "mean path", "timeouts/lookup", "failures"},
	}
	for _, iv := range o.Intervals {
		res, err := RunChurn(ChurnOptions{
			Nodes:          o.Nodes,
			Rates:          []float64{o.Rate},
			Lookups:        o.Lookups,
			StabilizeEvery: iv,
			Seed:           o.Seed,
			DHTs:           []string{"cycloid-7"},
		})
		if err != nil {
			return Table{}, err
		}
		c := res.Cells["cycloid-7"][0]
		t.Rows = append(t.Rows, []string{
			f0(iv), f2(c.MeanPath), fmt.Sprintf("%.3f", c.Timeouts.Mean), fmt.Sprintf("%d", c.Failures),
		})
	}
	return t, nil
}
