package experiments

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Table is a generic experiment output: a caption, a header row and data
// rows, rendered the way the paper lays out its tables and figure series.
type Table struct {
	Caption string
	Header  []string
	Rows    [][]string
}

// WriteTo renders the table with aligned columns.
func (t Table) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Caption)
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Header, "\t"))
	for _, r := range t.Rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	tw.Flush()
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table to a string.
func (t Table) String() string {
	var b strings.Builder
	if _, err := t.WriteTo(&b); err != nil {
		return err.Error()
	}
	return b.String()
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }

// summaryCell renders a (mean, p1, p99) triple the way the paper's
// percentile plots annotate points.
func summaryCell(mean, p1, p99 float64) string {
	return fmt.Sprintf("%.2f (%.0f, %.0f)", mean, p1, p99)
}
