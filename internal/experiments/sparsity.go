package experiments

import (
	"fmt"
	"math/rand"

	"cycloid/internal/overlay"
	"cycloid/internal/stats"
	"cycloid/internal/workload"
)

// SparsityOptions parameterizes the Section 4.5 experiment: location
// efficiency as a function of how much of the ID space is unoccupied.
type SparsityOptions struct {
	// Space is the identifier-space size, 2048 in the paper.
	Space uint64
	// Sparsities are the fractions of non-existent nodes, default 0..0.9.
	Sparsities []float64
	// Lookups per configuration, 10,000 in the paper.
	Lookups int
	Seed    int64
	DHTs    []string
}

func (o *SparsityOptions) defaults() {
	if o.Space == 0 {
		o.Space = 2048
	}
	if len(o.Sparsities) == 0 {
		o.Sparsities = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	}
	if o.Lookups == 0 {
		o.Lookups = 10000
	}
	if len(o.DHTs) == 0 {
		o.DHTs = DHTNames
	}
}

// SparsityCell is the measurement for one (DHT, sparsity) pair.
type SparsityCell struct {
	DHT       string
	Sparsity  float64
	Nodes     int
	MeanPath  float64
	PhaseMean map[string]float64
	Failures  int
}

// SparsityResult carries the sweep of Figures 13 and 14.
type SparsityResult struct {
	Sparsities []float64
	Cells      map[string][]SparsityCell
}

// RunSparsity reproduces Figure 13 (mean path length vs. ID-space
// sparsity) and Figure 14 (Koorde's hop breakdown vs. sparsity).
func RunSparsity(o SparsityOptions) (*SparsityResult, error) {
	o.defaults()
	res := &SparsityResult{Sparsities: o.Sparsities, Cells: make(map[string][]SparsityCell)}
	for _, name := range o.DHTs {
		res.Cells[name] = make([]SparsityCell, len(o.Sparsities))
	}
	type job struct {
		si   int
		name string
	}
	var jobs []job
	for si := range o.Sparsities {
		for _, name := range o.DHTs {
			jobs = append(jobs, job{si, name})
		}
	}
	err := parallelDo(len(jobs), func(i int) error {
		j := jobs[i]
		s := o.Sparsities[j.si]
		n := int(float64(o.Space) * (1 - s))
		if n < 2 {
			n = 2
		}
		net, err := BuildIn(j.name, o.Space, n, o.Seed+int64(s*100)+hashName(j.name))
		if err != nil {
			return fmt.Errorf("build %s at sparsity %.1f: %w", j.name, s, err)
		}
		rng := rand.New(rand.NewSource(o.Seed + int64(s*1000)))
		cell := SparsityCell{DHT: j.name, Sparsity: s, Nodes: n, PhaseMean: make(map[string]float64)}
		var paths stats.Sample
		phase := make(map[overlay.Phase]int)
		done := 0
		workload.RandomPairs(net, o.Lookups, rng, func(l workload.Lookup) {
			r := net.Lookup(l.Src, l.Key)
			if r.Failed {
				cell.Failures++
				return
			}
			paths.AddInt(r.PathLength())
			for _, h := range r.Hops {
				phase[h.Phase]++
			}
			done++
		})
		cell.MeanPath = paths.Mean()
		if done > 0 {
			for p, c := range phase {
				cell.PhaseMean[p.String()] = float64(c) / float64(done)
			}
		}
		res.Cells[j.name][j.si] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Fig13Table renders mean path length versus sparsity.
func (r *SparsityResult) Fig13Table() Table {
	names := sparsityDHTs(r.Cells)
	t := Table{
		Caption: "Figure 13: mean lookup path length vs. degree of ID-space sparsity",
		Header:  append([]string{"sparsity"}, names...),
	}
	for i, s := range r.Sparsities {
		row := []string{f2(s)}
		for _, name := range names {
			row = append(row, f2(r.Cells[name][i].MeanPath))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig14Table renders Koorde's de Bruijn/successor breakdown vs. sparsity.
func (r *SparsityResult) Fig14Table() Table {
	t := Table{
		Caption: "Figure 14: Koorde path breakdown vs. sparsity (mean hops per lookup)",
		Header:  []string{"sparsity", "debruijn", "successor", "successor share"},
	}
	for _, c := range r.Cells["koorde"] {
		deb, succ := c.PhaseMean["debruijn"], c.PhaseMean["successor"]
		share := 0.0
		if deb+succ > 0 {
			share = succ / (deb + succ)
		}
		t.Rows = append(t.Rows, []string{f2(c.Sparsity), f2(deb), f2(succ), fmt.Sprintf("%.0f%%", share*100)})
	}
	return t
}

func sparsityDHTs(cells map[string][]SparsityCell) []string {
	var out []string
	for _, name := range DHTNames {
		if _, ok := cells[name]; ok {
			out = append(out, name)
		}
	}
	return out
}
