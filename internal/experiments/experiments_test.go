package experiments

import (
	"strings"
	"testing"
)

// TestFig5Shape asserts the paper's headline comparison: Cycloid yields
// the best average-case location efficiency among the constant-degree
// DHTs, with Viceroy far behind.
func TestFig5Shape(t *testing.T) {
	r, err := RunPathLength(PathLengthOptions{
		Dims:         []int{5, 6, 7, 8},
		LookupBudget: 20000,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.Dims {
		c7 := r.Cells["cycloid-7"][i].MeanPath
		c11 := r.Cells["cycloid-11"][i].MeanPath
		vic := r.Cells["viceroy"][i].MeanPath
		koo := r.Cells["koorde"][i].MeanPath
		n := r.Cells["cycloid-7"][i].Nodes
		if c7 <= 0 || vic <= 0 || koo <= 0 {
			t.Fatalf("n=%d: zero path lengths", n)
		}
		if vic <= c7 {
			t.Errorf("n=%d: viceroy (%.2f) should be slower than cycloid-7 (%.2f)", n, vic, c7)
		}
		if koo <= c7 {
			t.Errorf("n=%d: koorde (%.2f) should be slower than cycloid-7 (%.2f)", n, koo, c7)
		}
		if c11 > c7*1.05 {
			t.Errorf("n=%d: cycloid-11 (%.2f) should not be slower than cycloid-7 (%.2f)", n, c11, c7)
		}
		if r.Cells["cycloid-7"][i].Failures > 0 {
			t.Errorf("n=%d: cycloid failures in a stable network", n)
		}
	}
	// Viceroy is "more than two times" Cycloid at the larger sizes.
	last := len(r.Dims) - 1
	if ratio := r.Cells["viceroy"][last].MeanPath / r.Cells["cycloid-7"][last].MeanPath; ratio < 1.7 {
		t.Errorf("viceroy/cycloid ratio %.2f at n=2048, want > 1.7", ratio)
	}
}

// TestFig7Shape asserts the phase-breakdown claims of Section 4.1.
func TestFig7Shape(t *testing.T) {
	r, err := RunPathLength(PathLengthOptions{
		Dims:         []int{7, 8},
		LookupBudget: 20000,
		Seed:         2,
		DHTs:         []string{"cycloid-7", "viceroy", "koorde"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.Dims {
		cy := r.Cells["cycloid-7"][i]
		total := cy.PhaseMean["ascending"] + cy.PhaseMean["descending"] + cy.PhaseMean["traverse"]
		if asc := cy.PhaseMean["ascending"] / total; asc > 0.25 {
			t.Errorf("cycloid ascending share %.2f, paper says up to ~15%%", asc)
		}
		vi := r.Cells["viceroy"][i]
		vtotal := vi.PhaseMean["ascending"] + vi.PhaseMean["descending"] + vi.PhaseMean["traverse"]
		vasc := vi.PhaseMean["ascending"] / vtotal
		if vasc < 0.15 || vasc > 0.50 {
			t.Errorf("viceroy ascending share %.2f, paper says ~30%%", vasc)
		}
		// Viceroy's ascending phase costs (log n)/2 steps; Cycloid's about
		// one. Their shares must reflect that ordering.
		if vi.PhaseMean["ascending"] <= cy.PhaseMean["ascending"] {
			t.Errorf("viceroy ascending hops (%.2f) should exceed cycloid's (%.2f)",
				vi.PhaseMean["ascending"], cy.PhaseMean["ascending"])
		}
		ko := r.Cells["koorde"][i]
		share := ko.PhaseMean["successor"] / (ko.PhaseMean["successor"] + ko.PhaseMean["debruijn"])
		if share < 0.10 || share > 0.55 {
			t.Errorf("koorde successor share %.2f in dense network, paper says ~30%%", share)
		}
	}
}

// TestFig8Shape asserts the key-distribution claims: Cycloid matches
// Chord/Koorde in a dense network, Viceroy is far more imbalanced.
func TestFig8Shape(t *testing.T) {
	r, err := RunKeyDistribution(KeyDistributionOptions{
		Nodes:     2000,
		KeyCounts: []int{20000, 100000},
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.KeyCounts {
		cy := r.Summary["cycloid-7"][i]
		vi := r.Summary["viceroy"][i]
		ko := r.Summary["koorde"][i]
		if vi.P99 <= cy.P99 {
			t.Errorf("keycount %d: viceroy p99 (%.0f) should exceed cycloid p99 (%.0f)", r.KeyCounts[i], vi.P99, cy.P99)
		}
		if cy.P99 > ko.P99*1.5 {
			t.Errorf("keycount %d: cycloid p99 (%.0f) should be comparable to koorde (%.0f)", r.KeyCounts[i], cy.P99, ko.P99)
		}
		wantMean := float64(r.KeyCounts[i]) / 2000
		if cy.Mean < wantMean*0.95 || cy.Mean > wantMean*1.05 {
			t.Errorf("cycloid mean %.2f, want ~%.2f", cy.Mean, wantMean)
		}
	}
}

// TestFig9Shape asserts the sparse-network claim: Cycloid balances keys
// better than Koorde when only half the ID space is occupied.
func TestFig9Shape(t *testing.T) {
	r, err := RunKeyDistribution(KeyDistributionOptions{
		Nodes:     1000,
		KeyCounts: []int{100000},
		Seed:      4,
		DHTs:      []string{"cycloid-7", "koorde"},
	})
	if err != nil {
		t.Fatal(err)
	}
	cy := r.Summary["cycloid-7"][0]
	ko := r.Summary["koorde"][0]
	if cy.P99 >= ko.P99 {
		t.Errorf("sparse network: cycloid p99 (%.0f) should be below koorde p99 (%.0f)", cy.P99, ko.P99)
	}
	if cy.Var >= ko.Var {
		t.Errorf("sparse network: cycloid variance (%.1f) should be below koorde's (%.1f)", cy.Var, ko.Var)
	}
}

// TestFig10Shape asserts the query-load claim: Cycloid has the smallest
// load variation among the constant-degree DHTs.
func TestFig10Shape(t *testing.T) {
	r, err := RunQueryLoad(QueryLoadOptions{
		Sizes:        []int{2048},
		LookupBudget: 40000,
		Seed:         5,
		DHTs:         []string{"cycloid-7", "viceroy", "koorde"},
	})
	if err != nil {
		t.Fatal(err)
	}
	cy := r.Summary["cycloid-7"][0]
	vi := r.Summary["viceroy"][0]
	ko := r.Summary["koorde"][0]
	cyRel := cy.P99 / cy.Mean
	viRel := vi.P99 / vi.Mean
	koRel := ko.P99 / ko.Mean
	if cyRel >= viRel {
		t.Errorf("cycloid relative p99 load %.2f should be below viceroy's %.2f", cyRel, viRel)
	}
	if cyRel >= koRel {
		t.Errorf("cycloid relative p99 load %.2f should be below koorde's %.2f", cyRel, koRel)
	}
}

// TestFailuresShape asserts Section 4.3: everyone but Koorde resolves all
// lookups; Viceroy sees no timeouts and shrinking paths; Cycloid's
// timeouts grow with p.
func TestFailuresShape(t *testing.T) {
	r, err := RunFailures(FailureOptions{
		Nodes:   2048,
		Probs:   []float64{0.1, 0.5},
		Lookups: 2500,
		Seed:    6,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.Probs {
		for _, name := range []string{"cycloid-7", "cycloid-11", "viceroy", "chord"} {
			if f := r.Cells[name][i].Failures; f > 0 {
				t.Errorf("%s: %d failures at p=%.1f, want 0", name, f, r.Probs[i])
			}
		}
		if to := r.Cells["viceroy"][i].Timeouts.Mean; to != 0 {
			t.Errorf("viceroy timeouts %.3f at p=%.1f, want 0", to, r.Probs[i])
		}
	}
	if r.Cells["koorde"][1].Failures == 0 {
		t.Error("koorde should fail some lookups at p=0.5")
	}
	cyLow, cyHigh := r.Cells["cycloid-7"][0].Timeouts.Mean, r.Cells["cycloid-7"][1].Timeouts.Mean
	if cyHigh <= cyLow {
		t.Errorf("cycloid timeouts should grow with p: %.2f -> %.2f", cyLow, cyHigh)
	}
	if cyLow <= 0 {
		t.Error("cycloid should see some timeouts at p=0.1")
	}
	viLow, viHigh := r.Cells["viceroy"][0].MeanPath, r.Cells["viceroy"][1].MeanPath
	if viHigh >= viLow {
		t.Errorf("viceroy path should shrink with departures: %.2f -> %.2f", viLow, viHigh)
	}
	chLow, chHigh := r.Cells["chord"][0].Timeouts.Mean, r.Cells["chord"][1].Timeouts.Mean
	if chHigh <= chLow {
		t.Errorf("chord timeouts should grow with p: %.2f -> %.2f", chLow, chHigh)
	}
	// Koorde's backup promotion keeps its timeout counts below Cycloid's.
	if ko := r.Cells["koorde"][1].Timeouts.Mean; ko >= cyHigh {
		t.Errorf("koorde timeouts (%.2f) should stay below cycloid's (%.2f)", ko, cyHigh)
	}
}

// TestChurnShape asserts Section 4.4: with stabilization, path lengths
// stay near the stable-network value, timeouts stay small, and no lookups
// fail.
func TestChurnShape(t *testing.T) {
	r, err := RunChurn(ChurnOptions{
		Nodes:   2048,
		Rates:   []float64{0.05, 0.40},
		Lookups: 1200,
		Seed:    7,
		DHTs:    []string{"cycloid-7", "viceroy", "koorde", "chord"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"cycloid-7", "viceroy", "koorde", "chord"} {
		for i := range r.Rates {
			c := r.Cells[name][i]
			if c.Failures > c.Lookups/100 {
				t.Errorf("%s at R=%.2f: %d failures of %d lookups", name, c.Rate, c.Failures, c.Lookups)
			}
			if c.Timeouts.Mean > 1.0 {
				t.Errorf("%s at R=%.2f: timeout mean %.3f, stabilization should keep it small", name, c.Rate, c.Timeouts.Mean)
			}
		}
		if r.Cells[name][0].Joins == 0 && name != "cycloid-7" {
			t.Errorf("%s: no joins happened", name)
		}
	}
	// Cycloid's churn path length stays near its stable value (~9 at 2048).
	for i := range r.Rates {
		if p := r.Cells["cycloid-7"][i].MeanPath; p < 5 || p > 13 {
			t.Errorf("cycloid churn path %.2f at R=%.2f outside the stable band", p, r.Rates[i])
		}
	}
	if to := r.Cells["viceroy"][1].Timeouts.Mean; to != 0 {
		t.Errorf("viceroy should have no timeouts under churn, got %.3f", to)
	}
}

// TestSparsityShape asserts Section 4.5: sparsity leaves Cycloid's
// efficiency intact (path even shrinks slightly) while Koorde's successor
// walks lengthen.
func TestSparsityShape(t *testing.T) {
	r, err := RunSparsity(SparsityOptions{
		Sparsities: []float64{0, 0.5, 0.9},
		Lookups:    3000,
		Seed:       8,
		DHTs:       []string{"cycloid-7", "koorde", "viceroy"},
	})
	if err != nil {
		t.Fatal(err)
	}
	cy0 := r.Cells["cycloid-7"][0].MeanPath
	cy9 := r.Cells["cycloid-7"][2].MeanPath
	if cy9 > cy0 {
		t.Errorf("cycloid path should not grow with sparsity: %.2f -> %.2f", cy0, cy9)
	}
	ko0 := r.Cells["koorde"][0]
	ko9 := r.Cells["koorde"][2]
	share := func(c SparsityCell) float64 {
		d, s := c.PhaseMean["debruijn"], c.PhaseMean["successor"]
		return s / (d + s)
	}
	if share(ko9) <= share(ko0) {
		t.Errorf("koorde successor share should grow with sparsity: %.2f -> %.2f", share(ko0), share(ko9))
	}
	for i := range r.Sparsities {
		for _, name := range []string{"cycloid-7", "koorde", "viceroy"} {
			if f := r.Cells[name][i].Failures; f > 0 {
				t.Errorf("%s: %d failures at sparsity %.1f", name, f, r.Sparsities[i])
			}
		}
	}
}

// TestStaticTables sanity-checks the definitional tables.
func TestStaticTables(t *testing.T) {
	t2, err := RunTable2()
	if err != nil {
		t.Fatal(err)
	}
	out := t2.String()
	if !strings.Contains(out, "(3,1010xxxx)") {
		t.Errorf("table2 missing the paper's cubical pattern:\n%s", out)
	}
	t3 := RunTable3()
	if len(t3.Rows) != 4 {
		t.Errorf("table3 rows = %d", len(t3.Rows))
	}
}

// TestAblationLeafSet verifies wider leaf sets never lengthen paths.
func TestAblationLeafSet(t *testing.T) {
	tab, err := RunAblationLeafSet(AblationLeafSetOptions{
		Halves:       []int{1, 4},
		Dims:         []int{7},
		LookupBudget: 20000,
		Seed:         9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 || len(tab.Rows[0]) != 3 {
		t.Fatalf("unexpected table shape: %+v", tab.Rows)
	}
	var narrow, wide float64
	if _, err := parseF(tab.Rows[0][1], &narrow); err != nil {
		t.Fatal(err)
	}
	if _, err := parseF(tab.Rows[0][2], &wide); err != nil {
		t.Fatal(err)
	}
	if wide > narrow*1.02 {
		t.Errorf("19-entry Cycloid (%.2f) should not be slower than 7-entry (%.2f)", wide, narrow)
	}
}

// TestRegistryRunsQuick smoke-runs cheap experiments end to end through
// the registry, the same path cmd/cycloid-bench uses.
func TestRegistryRunsQuick(t *testing.T) {
	reg := Registry()
	for _, id := range []string{"table2", "table3"} {
		var sb strings.Builder
		if err := reg[id].Run(&sb, RunConfig{Seed: 1, Quick: true}); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if sb.Len() == 0 {
			t.Fatalf("%s produced no output", id)
		}
	}
	if len(IDs()) < 15 {
		t.Errorf("registry has %d experiments, expected all tables and figures", len(IDs()))
	}
}
