package experiments

import (
	"fmt"
	"math/rand"

	"cycloid/internal/stats"
	"cycloid/internal/workload"
)

// FailureOptions parameterizes the Section 4.3 experiment: massive
// simultaneous graceful departures without stabilization.
type FailureOptions struct {
	// Nodes is the starting size, 2048 in the paper.
	Nodes int
	// Probs is the departure-probability sweep, default 0.1..0.5.
	Probs []float64
	// Lookups after the departures, 10,000 in the paper.
	Lookups int
	Seed    int64
	DHTs    []string
}

func (o *FailureOptions) defaults() {
	if o.Nodes == 0 {
		o.Nodes = 2048
	}
	if len(o.Probs) == 0 {
		o.Probs = []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	}
	if o.Lookups == 0 {
		o.Lookups = 10000
	}
	if len(o.DHTs) == 0 {
		o.DHTs = DHTNames
	}
}

// FailureCell is the measurement for one (DHT, p) pair.
type FailureCell struct {
	DHT      string
	Prob     float64
	Departed int
	MeanPath float64
	Timeouts stats.Summary
	Failures int
	Lookups  int
}

// FailureResult carries the sweep of Figure 11 and Table 4.
type FailureResult struct {
	Probs []float64
	Cells map[string][]FailureCell
}

// RunFailures reproduces Figure 11 and Table 4: each node departs
// gracefully with probability p (leaf sets / successor lists repaired by
// the departure protocol, routing tables left stale), then random lookups
// measure path lengths, timeouts, and failures. No stabilization runs.
func RunFailures(o FailureOptions) (*FailureResult, error) {
	o.defaults()
	res := &FailureResult{Probs: o.Probs, Cells: make(map[string][]FailureCell)}
	for _, name := range o.DHTs {
		res.Cells[name] = make([]FailureCell, len(o.Probs))
	}
	type job struct {
		pi   int
		name string
	}
	var jobs []job
	for pi := range o.Probs {
		for _, name := range o.DHTs {
			jobs = append(jobs, job{pi, name})
		}
	}
	err := parallelDo(len(jobs), func(i int) error {
		j := jobs[i]
		p := o.Probs[j.pi]
		net, err := Build(j.name, o.Nodes, o.Seed+hashName(j.name))
		if err != nil {
			return fmt.Errorf("build %s: %w", j.name, err)
		}
		rng := rand.New(rand.NewSource(o.Seed + int64(p*1000)))
		departing := workload.FailureSample(net.NodeIDs(), p, rng)
		for _, id := range departing {
			if err := net.Leave(id); err != nil {
				return fmt.Errorf("%s leave: %w", j.name, err)
			}
		}
		cell := FailureCell{DHT: j.name, Prob: p, Departed: len(departing), Lookups: o.Lookups}
		var paths stats.Sample
		var touts stats.Sample
		workload.RandomPairs(net, o.Lookups, rng, func(l workload.Lookup) {
			r := net.Lookup(l.Src, l.Key)
			paths.AddInt(r.PathLength())
			touts.AddInt(r.Timeouts)
			if r.Failed {
				cell.Failures++
			}
		})
		cell.MeanPath = paths.Mean()
		cell.Timeouts = touts.Summarize()
		res.Cells[j.name][j.pi] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Fig11Table renders mean path length versus departure probability.
func (r *FailureResult) Fig11Table() Table {
	names := failureDHTs(r.Cells)
	t := Table{
		Caption: "Figure 11: mean lookup path length vs. node departure probability",
		Header:  append([]string{"p"}, names...),
	}
	for i, p := range r.Probs {
		row := []string{f2(p)}
		for _, name := range names {
			row = append(row, f2(r.Cells[name][i].MeanPath))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Table4 renders timeouts per lookup (mean with 1st/99th percentiles).
func (r *FailureResult) Table4() Table {
	names := failureDHTs(r.Cells)
	t := Table{
		Caption: "Table 4: timeouts per lookup as nodes depart, mean (1st pct, 99th pct)",
		Header:  append([]string{"p"}, names...),
	}
	for i, p := range r.Probs {
		row := []string{f2(p)}
		for _, name := range names {
			s := r.Cells[name][i].Timeouts
			row = append(row, summaryCell(s.Mean, s.P1, s.P99))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// FailureCountTable renders lookup failures per DHT, the Koorde failure
// counts Section 4.3 discusses.
func (r *FailureResult) FailureCountTable() Table {
	names := failureDHTs(r.Cells)
	t := Table{
		Caption: fmt.Sprintf("Section 4.3: failed lookups out of %d", r.Cells[names[0]][0].Lookups),
		Header:  append([]string{"p"}, names...),
	}
	for i, p := range r.Probs {
		row := []string{f2(p)}
		for _, name := range names {
			row = append(row, fmt.Sprintf("%d", r.Cells[name][i].Failures))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

func failureDHTs(cells map[string][]FailureCell) []string {
	var out []string
	for _, name := range DHTNames {
		if _, ok := cells[name]; ok {
			out = append(out, name)
		}
	}
	return out
}
