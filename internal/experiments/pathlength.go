package experiments

import (
	"fmt"
	"math/rand"

	"cycloid/internal/overlay"
	"cycloid/internal/stats"
	"cycloid/internal/workload"
)

// PathLengthOptions parameterizes the Figure 5/6/7 experiment.
type PathLengthOptions struct {
	// Dims are the Cycloid dimensions to sweep; each yields n = d*2^d
	// nodes for every DHT. Default 3..8, the paper's range.
	Dims []int
	// LookupBudget caps the total lookups per (DHT, size) pair. The paper
	// issues n/4 lookups per node (n^2/4 total); the default budget of
	// 200,000 keeps the d=8 sweep fast while leaving means within a
	// fraction of a percent. Set 0 for the paper's exact workload.
	LookupBudget int
	Seed         int64
	// DHTs defaults to DHTNames.
	DHTs []string
}

func (o *PathLengthOptions) defaults() {
	if len(o.Dims) == 0 {
		o.Dims = []int{3, 4, 5, 6, 7, 8}
	}
	if o.LookupBudget == 0 {
		o.LookupBudget = 200000
	}
	if len(o.DHTs) == 0 {
		o.DHTs = DHTNames
	}
}

// PathLengthCell is the measurement for one (DHT, size) pair.
type PathLengthCell struct {
	DHT      string
	Dim      int
	Nodes    int
	Lookups  int
	MeanPath float64
	// PhaseMean maps a phase label to its mean hops per lookup, the
	// Figure 7 breakdown.
	PhaseMean map[string]float64
	Failures  int
}

// PathLengthResult carries the full sweep.
type PathLengthResult struct {
	Dims  []int
	Cells map[string][]PathLengthCell // DHT -> cell per dim
}

// RunPathLength measures mean lookup path lengths across network sizes
// (Figures 5 and 6) with per-phase breakdowns (Figure 7). Every node
// issues lookups to uniformly random keys. Cells — one DHT at one
// dimension — are independent and run in parallel.
func RunPathLength(o PathLengthOptions) (*PathLengthResult, error) {
	o.defaults()
	res := &PathLengthResult{Dims: o.Dims, Cells: make(map[string][]PathLengthCell)}
	for _, name := range o.DHTs {
		res.Cells[name] = make([]PathLengthCell, len(o.Dims))
	}
	type job struct {
		di   int
		name string
	}
	var jobs []job
	for di := range o.Dims {
		for _, name := range o.DHTs {
			jobs = append(jobs, job{di, name})
		}
	}
	err := parallelDo(len(jobs), func(i int) error {
		j := jobs[i]
		d := o.Dims[j.di]
		n := d << uint(d)
		net, err := Build(j.name, n, o.Seed+int64(d)*101)
		if err != nil {
			return fmt.Errorf("build %s at d=%d: %w", j.name, d, err)
		}
		res.Cells[j.name][j.di] = measurePaths(net, d, o.lookupsPerNode(n), o.Seed+int64(d))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

func (o PathLengthOptions) lookupsPerNode(n int) int {
	per := n / 4
	if per < 1 {
		per = 1
	}
	if o.LookupBudget > 0 && per*n > o.LookupBudget {
		per = o.LookupBudget / n
		if per < 1 {
			per = 1
		}
	}
	return per
}

func measurePaths(net Churner, dim, perNode int, seed int64) PathLengthCell {
	rng := rand.New(rand.NewSource(seed))
	cell := PathLengthCell{
		DHT:       net.Name(),
		Dim:       dim,
		Nodes:     net.Size(),
		PhaseMean: make(map[string]float64),
	}
	var paths stats.Sample
	phase := make(map[overlay.Phase]int)
	workload.PerNode(net, perNode, rng, func(l workload.Lookup) {
		r := net.Lookup(l.Src, l.Key)
		if r.Failed {
			cell.Failures++
			return
		}
		paths.AddInt(r.PathLength())
		for _, h := range r.Hops {
			phase[h.Phase]++
		}
		cell.Lookups++
	})
	cell.MeanPath = paths.Mean()
	if cell.Lookups > 0 {
		for p, c := range phase {
			cell.PhaseMean[p.String()] = float64(c) / float64(cell.Lookups)
		}
	}
	return cell
}

// Fig5Table renders mean path length versus network size.
func (r *PathLengthResult) Fig5Table() Table {
	t := Table{
		Caption: "Figure 5: mean lookup path length vs. network size (n = d*2^d)",
		Header:  append([]string{"n"}, dhtsOf(r.Cells)...),
	}
	for i, d := range r.Dims {
		row := []string{fmt.Sprintf("%d", d<<uint(d))}
		for _, name := range dhtsOf(r.Cells) {
			row = append(row, f2(r.Cells[name][i].MeanPath))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig6Table renders mean path length versus dimension.
func (r *PathLengthResult) Fig6Table() Table {
	t := Table{
		Caption: "Figure 6: mean lookup path length vs. network dimension",
		Header:  append([]string{"d"}, dhtsOf(r.Cells)...),
	}
	for i, d := range r.Dims {
		row := []string{fmt.Sprintf("%d", d)}
		for _, name := range dhtsOf(r.Cells) {
			row = append(row, f2(r.Cells[name][i].MeanPath))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig7Table renders the per-phase breakdown for one DHT.
func (r *PathLengthResult) Fig7Table(dht string) Table {
	cells := r.Cells[dht]
	phases := phaseOrder(dht)
	t := Table{
		Caption: fmt.Sprintf("Figure 7: path length breakdown for %s (mean hops per lookup)", dht),
		Header:  append([]string{"n"}, phases...),
	}
	for _, c := range cells {
		row := []string{fmt.Sprintf("%d", c.Nodes)}
		for _, p := range phases {
			row = append(row, f2(c.PhaseMean[p]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// phaseOrder returns the phase labels a DHT's lookups use.
func phaseOrder(dht string) []string {
	switch dht {
	case "koorde":
		return []string{"debruijn", "successor"}
	case "chord":
		return []string{"finger", "successor"}
	default:
		return []string{"ascending", "descending", "traverse"}
	}
}

// dhtsOf returns the cell map's DHT names in canonical order.
func dhtsOf(cells map[string][]PathLengthCell) []string {
	var out []string
	for _, name := range DHTNames {
		if _, ok := cells[name]; ok {
			out = append(out, name)
		}
	}
	return out
}
