package experiments

import (
	"fmt"
	"math/rand"

	"cycloid/internal/overlay"
	"cycloid/internal/sim"
	"cycloid/internal/stats"
)

// ChurnOptions parameterizes the Section 4.4 experiment: lookups during
// continuous joins and voluntary leaves with periodic stabilization, the
// protocol of the Chord paper's dynamic evaluation.
type ChurnOptions struct {
	// Nodes is the starting size, 2048 in the paper.
	Nodes int
	// Rates are the join/leave rates R in events per second; each rate
	// drives an independent join process and an independent leave process.
	// Default 0.05..0.40 step 0.05.
	Rates []float64
	// LookupRate is the Poisson lookup rate, 1/s in the paper.
	LookupRate float64
	// Lookups is how many lookups to observe before stopping, 10,000 in
	// the paper.
	Lookups int
	// StabilizeEvery is the per-node stabilization period, 30s in the
	// paper; each node's timer is uniformly staggered within the period.
	StabilizeEvery float64
	Seed           int64
	DHTs           []string
}

func (o *ChurnOptions) defaults() {
	if o.Nodes == 0 {
		o.Nodes = 2048
	}
	if len(o.Rates) == 0 {
		o.Rates = []float64{0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40}
	}
	if o.LookupRate == 0 {
		o.LookupRate = 1
	}
	if o.Lookups == 0 {
		o.Lookups = 10000
	}
	if o.StabilizeEvery == 0 {
		o.StabilizeEvery = 30
	}
	if len(o.DHTs) == 0 {
		o.DHTs = DHTNames
	}
}

// ChurnCell is the measurement for one (DHT, rate) pair.
type ChurnCell struct {
	DHT      string
	Rate     float64
	MeanPath float64
	Timeouts stats.Summary
	Failures int
	Joins    int
	Leaves   int
	Lookups  int
}

// ChurnResult carries the sweep of Figure 12 and Table 5.
type ChurnResult struct {
	Rates []float64
	Cells map[string][]ChurnCell
}

// RunChurn reproduces Figure 12 and Table 5 with the discrete-event
// kernel: joins and leaves arrive as independent Poisson processes at
// rate R, lookups at 1/s, and every node stabilizes once per period at
// its own uniformly staggered offset.
func RunChurn(o ChurnOptions) (*ChurnResult, error) {
	o.defaults()
	res := &ChurnResult{Rates: o.Rates, Cells: make(map[string][]ChurnCell)}
	for _, name := range o.DHTs {
		res.Cells[name] = make([]ChurnCell, len(o.Rates))
	}
	type job struct {
		ri   int
		name string
	}
	var jobs []job
	for ri := range o.Rates {
		for _, name := range o.DHTs {
			jobs = append(jobs, job{ri, name})
		}
	}
	err := parallelDo(len(jobs), func(i int) error {
		j := jobs[i]
		cell, err := runChurnOne(j.name, o.Rates[j.ri], o)
		if err != nil {
			return err
		}
		res.Cells[j.name][j.ri] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

func runChurnOne(name string, rate float64, o ChurnOptions) (ChurnCell, error) {
	net, err := Build(name, o.Nodes, o.Seed+hashName(name))
	if err != nil {
		return ChurnCell{}, fmt.Errorf("build %s: %w", name, err)
	}
	rng := rand.New(rand.NewSource(o.Seed + int64(rate*10000) + hashName(name)))
	eng := sim.NewEngine()
	cell := ChurnCell{DHT: name, Rate: rate}
	var paths stats.Sample
	var touts stats.Sample

	// Per-node stabilization timers, uniformly staggered.
	var scheduleStabilize func(id uint64, first bool)
	scheduleStabilize = func(id uint64, first bool) {
		delay := sim.Time(o.StabilizeEvery)
		if first {
			delay = sim.Time(rng.Float64() * o.StabilizeEvery)
		}
		eng.After(delay, func(sim.Time) {
			// A departed node's timer dies silently.
			if !net.Contains(id) {
				return
			}
			net.Stabilize(id)
			scheduleStabilize(id, false)
		})
	}
	for _, id := range net.NodeIDs() {
		scheduleStabilize(id, true)
	}

	// Lookup process.
	sim.NewPoisson(o.LookupRate, rng).Recur(eng, func(sim.Time) {
		if cell.Lookups >= o.Lookups {
			eng.Halt()
			return
		}
		r := net.Lookup(overlay.RandomNode(net, rng), overlay.RandomKey(net, rng))
		paths.AddInt(r.PathLength())
		touts.AddInt(r.Timeouts)
		if r.Failed {
			cell.Failures++
		}
		cell.Lookups++
	})

	// Join and leave processes at rate R each.
	sim.NewPoisson(rate, rng).Recur(eng, func(sim.Time) {
		id, err := net.Join(rng)
		if err != nil {
			return // ID space momentarily full; skip this arrival
		}
		cell.Joins++
		scheduleStabilize(id, true)
	})
	sim.NewPoisson(rate, rng).Recur(eng, func(sim.Time) {
		if net.Size() <= 2 {
			return
		}
		if err := net.Leave(overlay.RandomNode(net, rng)); err == nil {
			cell.Leaves++
		}
	})

	horizon := sim.Time(float64(o.Lookups)/o.LookupRate*4 + 1000)
	eng.Run(horizon)

	cell.MeanPath = paths.Mean()
	cell.Timeouts = touts.Summarize()
	return cell, nil
}

// Fig12Table renders mean path length versus churn rate.
func (r *ChurnResult) Fig12Table() Table {
	names := churnDHTs(r.Cells)
	t := Table{
		Caption: "Figure 12: mean lookup path length vs. node join/leave rate (events/s)",
		Header:  append([]string{"R"}, names...),
	}
	for i, rate := range r.Rates {
		row := []string{f2(rate)}
		for _, name := range names {
			row = append(row, f2(r.Cells[name][i].MeanPath))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Table5 renders timeouts per lookup under churn.
func (r *ChurnResult) Table5() Table {
	names := churnDHTs(r.Cells)
	t := Table{
		Caption: "Table 5: timeouts per lookup under churn, mean (1st pct, 99th pct)",
		Header:  append([]string{"R"}, names...),
	}
	for i, rate := range r.Rates {
		row := []string{f2(rate)}
		for _, name := range names {
			s := r.Cells[name][i].Timeouts
			row = append(row, fmt.Sprintf("%.3f (%.0f, %.0f)", s.Mean, s.P1, s.P99))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

func churnDHTs(cells map[string][]ChurnCell) []string {
	var out []string
	for _, name := range DHTNames {
		if _, ok := cells[name]; ok {
			out = append(out, name)
		}
	}
	return out
}
