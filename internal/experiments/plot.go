package experiments

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// CSV renders the table as comma-separated values for downstream plotting
// tools, quoting cells that contain commas.
func (t Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// Plot renders the table as an ASCII line chart, the shape the paper's
// figures plot: the first column is the X axis, every further column is
// one series (cells may carry percentile annotations — only the leading
// number is plotted). Returns an empty string when the table has no
// plottable numeric data.
func (t Table) Plot(width, height int) string {
	if width < 20 {
		width = 60
	}
	if height < 5 {
		height = 16
	}
	type series struct {
		name string
		ys   []float64
	}
	var xs []float64
	var all []series
	for ci := 1; ci < len(t.Header); ci++ {
		all = append(all, series{name: t.Header[ci]})
	}
	for _, row := range t.Rows {
		if len(row) != len(t.Header) {
			return ""
		}
		x, err := leadingFloat(row[0])
		if err != nil {
			return ""
		}
		xs = append(xs, x)
		for ci := 1; ci < len(row); ci++ {
			y, err := leadingFloat(row[ci])
			if err != nil {
				return ""
			}
			all[ci-1].ys = append(all[ci-1].ys, y)
		}
	}
	if len(xs) < 2 || len(all) == 0 {
		return ""
	}

	xmin, xmax := minMax(xs)
	var ymin, ymax float64 = math.Inf(1), math.Inf(-1)
	for _, s := range all {
		lo, hi := minMax(s.ys)
		ymin, ymax = math.Min(ymin, lo), math.Max(ymax, hi)
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	if xmax == xmin {
		xmax = xmin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	marks := "*o+x#@%&"
	for si, s := range all {
		mark := marks[si%len(marks)]
		for i := range xs {
			col := int(math.Round((xs[i] - xmin) / (xmax - xmin) * float64(width-1)))
			row := int(math.Round((ymax - s.ys[i]) / (ymax - ymin) * float64(height-1)))
			grid[row][col] = mark
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Caption)
	for r, line := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%7.2f ", ymax)
		case height - 1:
			label = fmt.Sprintf("%7.2f ", ymin)
		}
		fmt.Fprintf(&b, "%s|%s\n", label, string(line))
	}
	fmt.Fprintf(&b, "%s+%s\n", strings.Repeat(" ", 8), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%8s%-*g%g\n", " ", width-len(fmt.Sprint(xmax))+1, xmin, xmax)
	b.WriteString("        ")
	for si, s := range all {
		if si > 0 {
			b.WriteString("   ")
		}
		fmt.Fprintf(&b, "%c %s", marks[si%len(marks)], s.name)
	}
	b.WriteByte('\n')
	return b.String()
}

// leadingFloat parses the leading numeric token of a cell like
// "8.69" or "0.94 (0, 5)".
func leadingFloat(s string) (float64, error) {
	s = strings.TrimSpace(s)
	end := 0
	for end < len(s) && (s[end] == '-' || s[end] == '.' || (s[end] >= '0' && s[end] <= '9')) {
		end++
	}
	if end == 0 {
		return 0, fmt.Errorf("no number in %q", s)
	}
	return strconv.ParseFloat(s[:end], 64)
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		lo, hi = math.Min(lo, x), math.Max(hi, x)
	}
	return lo, hi
}
