package experiments

import (
	"fmt"

	"cycloid/internal/stats"
	"cycloid/internal/workload"
)

// KeyDistributionOptions parameterizes the Figure 8/9 experiment: how
// evenly each DHT's placement rule spreads hashed keys over the nodes.
type KeyDistributionOptions struct {
	// Nodes is the number of participants (2000 for Figure 8, 1000 for
	// the sparse Figure 9).
	Nodes int
	// Space is the identifier-space size, 2048 in the paper.
	Space uint64
	// KeyCounts are the total-keys sweep, default 10^4..10^5 step 10^4.
	KeyCounts []int
	Seed      int64
	DHTs      []string
}

func (o *KeyDistributionOptions) defaults() {
	if o.Nodes == 0 {
		o.Nodes = 2000
	}
	if o.Space == 0 {
		o.Space = 2048
	}
	if len(o.KeyCounts) == 0 {
		for k := 10000; k <= 100000; k += 10000 {
			o.KeyCounts = append(o.KeyCounts, k)
		}
	}
	if len(o.DHTs) == 0 {
		o.DHTs = DHTNames
	}
}

// KeyDistributionResult holds per-(DHT, keycount) load summaries.
type KeyDistributionResult struct {
	Nodes     int
	KeyCounts []int
	Summary   map[string][]stats.Summary // DHT -> summary per key count
}

// RunKeyDistribution assigns hashed keys to nodes under each DHT's
// placement rule and summarizes keys-per-node (mean, 1st and 99th
// percentiles), reproducing Figures 8 and 9.
func RunKeyDistribution(o KeyDistributionOptions) (*KeyDistributionResult, error) {
	o.defaults()
	res := &KeyDistributionResult{
		Nodes:     o.Nodes,
		KeyCounts: o.KeyCounts,
		Summary:   make(map[string][]stats.Summary),
	}
	for _, name := range o.DHTs {
		net, err := BuildIn(name, o.Space, o.Nodes, o.Seed+hashName(name))
		if err != nil {
			return nil, fmt.Errorf("build %s: %w", name, err)
		}
		maxKeys := o.KeyCounts[len(o.KeyCounts)-1]
		keys := workload.Keys(maxKeys, net.KeySpace())
		counter := stats.NewCounter()
		prev := 0
		for _, kc := range o.KeyCounts {
			for _, key := range keys[prev:kc] {
				counter.Inc(net.Responsible(key), 1)
			}
			prev = kc
			res.Summary[name] = append(res.Summary[name], counter.Sample(net.NodeIDs()).Summarize())
		}
	}
	return res, nil
}

func hashName(s string) int64 {
	var h int64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h = (h ^ int64(s[i])) * 1099511628211
	}
	if h < 0 {
		h = -h
	}
	return h % 100000
}

// Table renders keys-per-node summaries, Figure 8/9 style.
func (r *KeyDistributionResult) Table(caption string) Table {
	names := summaryDHTs(r.Summary)
	t := Table{
		Caption: fmt.Sprintf("%s: keys per node, mean (1st pct, 99th pct); %d nodes", caption, r.Nodes),
		Header:  append([]string{"keys"}, names...),
	}
	for i, kc := range r.KeyCounts {
		row := []string{fmt.Sprintf("%d", kc)}
		for _, name := range names {
			s := r.Summary[name][i]
			row = append(row, summaryCell(s.Mean, s.P1, s.P99))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

func summaryDHTs(m map[string][]stats.Summary) []string {
	var out []string
	for _, name := range DHTNames {
		if _, ok := m[name]; ok {
			out = append(out, name)
		}
	}
	return out
}
