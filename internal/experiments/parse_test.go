package experiments

import "fmt"

// parseF parses a float cell rendered by the table writers.
func parseF(s string, out *float64) (int, error) {
	return fmt.Sscanf(s, "%f", out)
}
