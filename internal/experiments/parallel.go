package experiments

import (
	"runtime"
	"sync"
)

// parallelDo runs fn(i) for every i in [0, n) across GOMAXPROCS workers
// and returns the first error. Experiment cells (one DHT at one parameter
// point) are mutually independent — each builds its own network and owns
// its own RNG — so the sweeps parallelize without changing any result.
//
// The first error stops the dispatch of queued jobs: in-flight cells run
// to completion, but the rest of the sweep is abandoned instead of
// burning minutes of work whose results would be discarded.
func parallelDo(n int, fn func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		once     sync.Once
		firstErr error
	)
	done := make(chan struct{})
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		once.Do(func() { close(done) })
	}
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if err := fn(i); err != nil {
					fail(err)
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case jobs <- i:
		case <-done:
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	return firstErr
}
