package experiments

import (
	"runtime"
	"sync"
)

// parallelDo runs fn(i) for every i in [0, n) across GOMAXPROCS workers
// and returns the first error. Experiment cells (one DHT at one parameter
// point) are mutually independent — each builds its own network and owns
// its own RNG — so the sweeps parallelize without changing any result.
func parallelDo(n int, fn func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if err := fn(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return firstErr
}
