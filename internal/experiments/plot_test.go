package experiments

import (
	"strings"
	"testing"
)

func sampleTable() Table {
	return Table{
		Caption: "sample figure",
		Header:  []string{"n", "cycloid-7", "viceroy"},
		Rows: [][]string{
			{"24", "2.28", "5.42"},
			{"160", "4.86", "9.86"},
			{"2048", "8.69", "17.55"},
		},
	}
}

func TestCSV(t *testing.T) {
	got := sampleTable().CSV()
	want := "n,cycloid-7,viceroy\n24,2.28,5.42\n160,4.86,9.86\n2048,8.69,17.55\n"
	if got != want {
		t.Fatalf("CSV:\n%q\nwant:\n%q", got, want)
	}
}

func TestCSVQuoting(t *testing.T) {
	tab := Table{
		Header: []string{"p", "timeouts"},
		Rows:   [][]string{{"0.10", `0.94 (0, 5)`}, {"0.20", `say "hi"`}},
	}
	got := tab.CSV()
	if !strings.Contains(got, `"0.94 (0, 5)"`) {
		t.Errorf("comma cell not quoted:\n%s", got)
	}
	if !strings.Contains(got, `"say ""hi"""`) {
		t.Errorf("quote cell not escaped:\n%s", got)
	}
}

func TestPlotBasics(t *testing.T) {
	out := sampleTable().Plot(60, 12)
	if out == "" {
		t.Fatal("Plot returned empty for a numeric table")
	}
	if !strings.Contains(out, "sample figure") {
		t.Error("plot missing caption")
	}
	if !strings.Contains(out, "* cycloid-7") || !strings.Contains(out, "o viceroy") {
		t.Errorf("plot missing legend:\n%s", out)
	}
	// The max Y label should appear at the top of the axis.
	if !strings.Contains(out, "17.55") {
		t.Errorf("plot missing y-axis max:\n%s", out)
	}
	// Both series marks must be drawn somewhere.
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("plot missing series marks:\n%s", out)
	}
}

func TestPlotHandlesAnnotatedCells(t *testing.T) {
	tab := Table{
		Caption: "annotated",
		Header:  []string{"p", "timeouts"},
		Rows:    [][]string{{"0.10", "0.94 (0, 5)"}, {"0.50", "7.18 (0, 25)"}},
	}
	if tab.Plot(40, 8) == "" {
		t.Fatal("Plot should parse the leading number of annotated cells")
	}
}

func TestPlotRejectsNonNumeric(t *testing.T) {
	tab := Table{
		Header: []string{"system", "base"},
		Rows:   [][]string{{"cycloid", "CCC"}},
	}
	if tab.Plot(40, 8) != "" {
		t.Fatal("Plot should return empty for non-numeric tables")
	}
}

func TestPlotDegenerate(t *testing.T) {
	one := Table{Header: []string{"x", "y"}, Rows: [][]string{{"1", "2"}}}
	if one.Plot(40, 8) != "" {
		t.Fatal("single-point tables cannot be plotted")
	}
	flat := Table{
		Caption: "flat",
		Header:  []string{"x", "y"},
		Rows:    [][]string{{"1", "5"}, {"2", "5"}, {"3", "5"}},
	}
	if flat.Plot(40, 8) == "" {
		t.Fatal("constant series must still plot (degenerate y-range)")
	}
}

func TestLeadingFloat(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		err  bool
	}{
		{"8.69", 8.69, false},
		{"0.94 (0, 5)", 0.94, false},
		{"-3.5x", -3.5, false},
		{" 42 ", 42, false},
		{"CCC", 0, true},
	}
	for _, c := range cases {
		got, err := leadingFloat(c.in)
		if (err != nil) != c.err || (!c.err && got != c.want) {
			t.Errorf("leadingFloat(%q) = %v, %v", c.in, got, err)
		}
	}
}
