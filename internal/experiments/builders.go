// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 4). Each experiment takes a seed, builds the DHTs it
// compares, drives the paper's workload, and returns structured rows that
// cmd/cycloid-bench renders in the layout the paper reports.
package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"cycloid/internal/chord"
	"cycloid/internal/cycloid"
	"cycloid/internal/koorde"
	"cycloid/internal/overlay"
	"cycloid/internal/viceroy"
)

// Churner is the full capability set the dynamic experiments need.
type Churner = overlay.Churner

// DHTNames lists the systems every comparison covers, in the paper's
// presentation order.
var DHTNames = []string{"cycloid-7", "cycloid-11", "viceroy", "chord", "koorde"}

// ringBitsFor returns the smallest m with 2^m >= n.
func ringBitsFor(n int) int {
	m := 2
	for (uint64(1) << uint(m)) < uint64(n) {
		m++
	}
	return m
}

// BuildCycloid builds a converged n-node Cycloid of the smallest dimension
// whose ID space holds n nodes; when n fills the space exactly the network
// is the complete CCC, the configuration Figures 5-7 use.
func BuildCycloid(n, leafHalf int, seed int64) (*cycloid.Network, error) {
	d := cycloid.DimForNodes(n)
	cfg := cycloid.Config{Dim: d, LeafHalf: leafHalf}
	if uint64(n) == uint64(d)<<uint(d) {
		return cycloid.NewComplete(cfg)
	}
	return cycloid.NewRandom(cfg, n, rand.New(rand.NewSource(seed)))
}

// BuildCycloidIn builds a converged n-node Cycloid in a fixed-dimension
// space (for the sparsity and key-distribution experiments, which hold the
// ID space at 2048 positions while varying occupancy).
func BuildCycloidIn(dim, n, leafHalf int, seed int64) (*cycloid.Network, error) {
	return cycloid.NewRandom(cycloid.Config{Dim: dim, LeafHalf: leafHalf}, n, rand.New(rand.NewSource(seed)))
}

// BuildChord builds a converged n-node Chord on the smallest ring holding n.
func BuildChord(n int, seed int64) (*chord.Network, error) {
	return BuildChordIn(ringBitsFor(n), n, seed)
}

// BuildChordIn builds n Chord nodes on a 2^bits ring.
func BuildChordIn(bits, n int, seed int64) (*chord.Network, error) {
	return chord.NewRandom(chord.Config{Bits: bits, SuccessorList: 3}, n, rand.New(rand.NewSource(seed)))
}

// BuildKoorde builds a converged n-node Koorde with the paper's 7-entry
// configuration (1 de Bruijn pointer, 3 backups, 3 successors).
func BuildKoorde(n int, seed int64) (*koorde.Network, error) {
	return BuildKoordeIn(ringBitsFor(n), n, seed)
}

// BuildKoordeIn builds n Koorde nodes on a 2^bits ring.
func BuildKoordeIn(bits, n int, seed int64) (*koorde.Network, error) {
	return koorde.NewRandom(koorde.Config{Bits: bits, Successors: 3, Backups: 3}, n, rand.New(rand.NewSource(seed)))
}

// BuildViceroy builds a converged n-node Viceroy with n as its own size
// estimate.
func BuildViceroy(n int, seed int64) (*viceroy.Network, error) {
	return viceroy.NewRandom(viceroy.Config{ExpectedNodes: n}, n, rand.New(rand.NewSource(seed)))
}

// Build constructs the named DHT with n nodes (ID spaces sized to fit n).
func Build(name string, n int, seed int64) (Churner, error) {
	switch name {
	case "cycloid-7":
		return BuildCycloid(n, 1, seed)
	case "cycloid-11":
		return BuildCycloid(n, 2, seed)
	case "viceroy":
		return BuildViceroy(n, seed)
	case "chord":
		return BuildChord(n, seed)
	case "koorde":
		return BuildKoorde(n, seed)
	default:
		return nil, fmt.Errorf("experiments: unknown DHT %q", name)
	}
}

// BuildIn constructs the named DHT with n nodes in an ID space of exactly
// `space` positions (2048 in the paper's Sections 4.2-4.5). The Cycloid
// dimension d satisfies d*2^d = space; Chord and Koorde use log2(space)
// bits. Viceroy's [0,1) space cannot be sized and stays at full
// resolution, exactly the paper's observation in Section 4.5.
func BuildIn(name string, space uint64, n int, seed int64) (Churner, error) {
	switch name {
	case "cycloid-7", "cycloid-11":
		half := 1
		if name == "cycloid-11" {
			half = 2
		}
		d := dimForSpace(space)
		if d < 0 {
			return nil, fmt.Errorf("experiments: %d is not d*2^d for any d", space)
		}
		return BuildCycloidIn(d, n, half, seed)
	case "viceroy":
		return BuildViceroy(n, seed)
	case "chord":
		return BuildChordIn(bitsForSpace(space), n, seed)
	case "koorde":
		return BuildKoordeIn(bitsForSpace(space), n, seed)
	default:
		return nil, fmt.Errorf("experiments: unknown DHT %q", name)
	}
}

// dimForSpace returns d with d*2^d == space, or -1.
func dimForSpace(space uint64) int {
	for d := 2; d <= 30; d++ {
		if uint64(d)<<uint(d) == space {
			return d
		}
	}
	return -1
}

// bitsForSpace returns ceil(log2(space)).
func bitsForSpace(space uint64) int {
	return int(math.Ceil(math.Log2(float64(space))))
}
