package experiments

import (
	"fmt"
	"io"
	"sort"
)

// RunConfig is the common knob set cmd/cycloid-bench exposes.
type RunConfig struct {
	Seed int64
	// Quick shrinks workloads by roughly an order of magnitude for smoke
	// runs; the full defaults match the paper's setup.
	Quick bool
	// Lookups overrides the per-experiment lookup count when positive.
	Lookups int
	// Format selects the output rendering: "table" (default, the paper's
	// layout), "csv" for downstream plotting tools, or "plot" for ASCII
	// line charts of the figure series.
	Format string
}

// emit renders one table in the configured format. Tables without numeric
// series (e.g. Table 2) fall back to the tabular layout under "plot".
func emit(w io.Writer, cfg RunConfig, t Table) error {
	switch cfg.Format {
	case "csv":
		_, err := io.WriteString(w, t.CSV())
		return err
	case "plot":
		if p := t.Plot(64, 16); p != "" {
			_, err := io.WriteString(w, p)
			return err
		}
	}
	_, err := t.WriteTo(w)
	return err
}

func (c RunConfig) lookups(full, quick int) int {
	if c.Lookups > 0 {
		return c.Lookups
	}
	if c.Quick {
		return quick
	}
	return full
}

// Runner executes one experiment and writes its table(s).
type Runner struct {
	ID          string
	Description string
	Run         func(w io.Writer, cfg RunConfig) error
}

// Registry returns all experiments keyed by id.
func Registry() map[string]Runner {
	rs := []Runner{
		{
			ID:          "table1",
			Description: "architectural comparison with measured path lengths",
			Run: func(w io.Writer, cfg RunConfig) error {
				t, err := RunTable1(cfg.Seed, cfg.lookups(20000, 2000))
				if err != nil {
					return err
				}
				return emit(w, cfg, t)
			},
		},
		{
			ID:          "table2",
			Description: "routing state of Cycloid node (4,10110110), d=8",
			Run: func(w io.Writer, cfg RunConfig) error {
				t, err := RunTable2()
				if err != nil {
					return err
				}
				return emit(w, cfg, t)
			},
		},
		{
			ID:          "table3",
			Description: "node identification and key assignment rules",
			Run: func(w io.Writer, cfg RunConfig) error {
				return emit(w, cfg, RunTable3())
			},
		},
		{
			ID:          "fig5",
			Description: "path length vs. network size (also produces fig6 data)",
			Run: func(w io.Writer, cfg RunConfig) error {
				r, err := RunPathLength(PathLengthOptions{Seed: cfg.Seed, LookupBudget: cfg.lookups(200000, 20000)})
				if err != nil {
					return err
				}
				if err := emit(w, cfg, r.Fig5Table()); err != nil {
					return err
				}
				fmt.Fprintln(w)
				return emit(w, cfg, r.Fig6Table())
			},
		},
		{
			ID:          "fig6",
			Description: "path length vs. network dimension",
			Run: func(w io.Writer, cfg RunConfig) error {
				r, err := RunPathLength(PathLengthOptions{Seed: cfg.Seed, LookupBudget: cfg.lookups(200000, 20000)})
				if err != nil {
					return err
				}
				return emit(w, cfg, r.Fig6Table())
			},
		},
		{
			ID:          "fig7",
			Description: "per-phase path length breakdown (Cycloid, Viceroy, Koorde)",
			Run: func(w io.Writer, cfg RunConfig) error {
				r, err := RunPathLength(PathLengthOptions{Seed: cfg.Seed, LookupBudget: cfg.lookups(200000, 20000)})
				if err != nil {
					return err
				}
				for _, dht := range []string{"cycloid-7", "viceroy", "koorde"} {
					if err := emit(w, cfg, r.Fig7Table(dht)); err != nil {
						return err
					}
					fmt.Fprintln(w)
				}
				return nil
			},
		},
		{
			ID:          "fig8",
			Description: "key distribution, 2000 nodes in a 2048-ID space",
			Run: func(w io.Writer, cfg RunConfig) error {
				r, err := RunKeyDistribution(KeyDistributionOptions{Nodes: 2000, Seed: cfg.Seed})
				if err != nil {
					return err
				}
				return emit(w, cfg, r.Table("Figure 8"))
			},
		},
		{
			ID:          "fig9",
			Description: "key distribution, 1000 nodes (sparse network)",
			Run: func(w io.Writer, cfg RunConfig) error {
				r, err := RunKeyDistribution(KeyDistributionOptions{
					Nodes: 1000, Seed: cfg.Seed,
					DHTs: []string{"cycloid-7", "chord", "koorde"},
				})
				if err != nil {
					return err
				}
				return emit(w, cfg, r.Table("Figure 9"))
			},
		},
		{
			ID:          "fig10",
			Description: "query load distribution, 64- and 2048-node networks",
			Run: func(w io.Writer, cfg RunConfig) error {
				r, err := RunQueryLoad(QueryLoadOptions{Seed: cfg.Seed, LookupBudget: cfg.lookups(200000, 20000)})
				if err != nil {
					return err
				}
				return emit(w, cfg, r.Table())
			},
		},
		{
			ID:          "fig11",
			Description: "path length and timeouts under massive departures (also table4)",
			Run: func(w io.Writer, cfg RunConfig) error {
				r, err := RunFailures(FailureOptions{Seed: cfg.Seed, Lookups: cfg.lookups(10000, 2000)})
				if err != nil {
					return err
				}
				if err := emit(w, cfg, r.Fig11Table()); err != nil {
					return err
				}
				fmt.Fprintln(w)
				if err := emit(w, cfg, r.Table4()); err != nil {
					return err
				}
				fmt.Fprintln(w)
				return emit(w, cfg, r.FailureCountTable())
			},
		},
		{
			ID:          "table4",
			Description: "timeouts vs. departure probability",
			Run: func(w io.Writer, cfg RunConfig) error {
				r, err := RunFailures(FailureOptions{Seed: cfg.Seed, Lookups: cfg.lookups(10000, 2000)})
				if err != nil {
					return err
				}
				return emit(w, cfg, r.Table4())
			},
		},
		{
			ID:          "fig12",
			Description: "path length under continuous churn with stabilization (also table5)",
			Run: func(w io.Writer, cfg RunConfig) error {
				opts := ChurnOptions{Seed: cfg.Seed, Lookups: cfg.lookups(10000, 1500)}
				if cfg.Quick {
					opts.Rates = []float64{0.05, 0.20, 0.40}
				}
				r, err := RunChurn(opts)
				if err != nil {
					return err
				}
				if err := emit(w, cfg, r.Fig12Table()); err != nil {
					return err
				}
				fmt.Fprintln(w)
				return emit(w, cfg, r.Table5())
			},
		},
		{
			ID:          "table5",
			Description: "timeouts vs. churn rate",
			Run: func(w io.Writer, cfg RunConfig) error {
				opts := ChurnOptions{Seed: cfg.Seed, Lookups: cfg.lookups(10000, 1500)}
				if cfg.Quick {
					opts.Rates = []float64{0.05, 0.20, 0.40}
				}
				r, err := RunChurn(opts)
				if err != nil {
					return err
				}
				return emit(w, cfg, r.Table5())
			},
		},
		{
			ID:          "fig13",
			Description: "path length vs. ID-space sparsity (also fig14)",
			Run: func(w io.Writer, cfg RunConfig) error {
				r, err := RunSparsity(SparsityOptions{Seed: cfg.Seed, Lookups: cfg.lookups(10000, 2000)})
				if err != nil {
					return err
				}
				if err := emit(w, cfg, r.Fig13Table()); err != nil {
					return err
				}
				fmt.Fprintln(w)
				return emit(w, cfg, r.Fig14Table())
			},
		},
		{
			ID:          "fig14",
			Description: "Koorde hop breakdown vs. sparsity",
			Run: func(w io.Writer, cfg RunConfig) error {
				r, err := RunSparsity(SparsityOptions{Seed: cfg.Seed, Lookups: cfg.lookups(10000, 2000), DHTs: []string{"koorde"}})
				if err != nil {
					return err
				}
				return emit(w, cfg, r.Fig14Table())
			},
		},
		{
			ID:          "ablation-leafset",
			Description: "Cycloid leaf-set width sweep",
			Run: func(w io.Writer, cfg RunConfig) error {
				t, err := RunAblationLeafSet(AblationLeafSetOptions{Seed: cfg.Seed, LookupBudget: cfg.lookups(100000, 10000)})
				if err != nil {
					return err
				}
				return emit(w, cfg, t)
			},
		},
		{
			ID:          "ablation-stabilization",
			Description: "Cycloid stabilization-interval sweep under churn",
			Run: func(w io.Writer, cfg RunConfig) error {
				t, err := RunAblationStabilization(AblationStabilizationOptions{Seed: cfg.Seed, Lookups: cfg.lookups(4000, 1000)})
				if err != nil {
					return err
				}
				return emit(w, cfg, t)
			},
		},
		{
			ID:          "ungraceful",
			Description: "extension: silent failures without notifications, 7- vs 11-entry, plus recovery",
			Run: func(w io.Writer, cfg RunConfig) error {
				r, err := RunUngraceful(UngracefulOptions{Seed: cfg.Seed, Lookups: cfg.lookups(5000, 1000)})
				if err != nil {
					return err
				}
				return emit(w, cfg, r.Table())
			},
		},
		{
			ID:          "maintenance",
			Description: "join/leave maintenance overhead counters",
			Run: func(w io.Writer, cfg RunConfig) error {
				t, err := MaintenanceReport(512, cfg.lookups(200, 50), cfg.Seed)
				if err != nil {
					return err
				}
				return emit(w, cfg, t)
			},
		},
	}
	m := make(map[string]Runner, len(rs))
	for _, r := range rs {
		m[r.ID] = r
	}
	return m
}

// IDs returns the registered experiment ids, sorted.
func IDs() []string {
	m := Registry()
	out := make([]string, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
