package experiments

import (
	"math/rand"
	"testing"

	"cycloid/internal/overlay"
)

// TestCrossDHTInvariants checks properties every DHT implementation must
// satisfy, uniformly across all five systems:
//
//  1. lookups are deterministic (same source, same key, same route),
//  2. the terminal never depends on the source (consistent placement),
//  3. a lookup from the responsible node itself takes zero hops,
//  4. every hop's From is the previous hop's To (contiguous routes),
//  5. Responsible agrees with the lookup terminal.
func TestCrossDHTInvariants(t *testing.T) {
	for _, name := range DHTNames {
		name := name
		t.Run(name, func(t *testing.T) {
			net, err := Build(name, 300, 21)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(22))
			for trial := 0; trial < 200; trial++ {
				key := overlay.RandomKey(net, rng)
				owner := net.Responsible(key)

				// (3) zero hops from the owner.
				self := net.Lookup(owner, key)
				if self.PathLength() != 0 || self.Terminal != owner || self.Failed {
					t.Fatalf("lookup from owner: %+v", self)
				}

				srcA := overlay.RandomNode(net, rng)
				srcB := overlay.RandomNode(net, rng)
				ra1 := net.Lookup(srcA, key)
				ra2 := net.Lookup(srcA, key)
				rb := net.Lookup(srcB, key)

				// (1) determinism.
				if ra1.Terminal != ra2.Terminal || ra1.PathLength() != ra2.PathLength() {
					t.Fatalf("nondeterministic lookup: %+v vs %+v", ra1, ra2)
				}
				// (2) source independence and (5) placement agreement.
				if ra1.Terminal != rb.Terminal || ra1.Terminal != owner {
					t.Fatalf("terminals disagree: %d vs %d vs owner %d", ra1.Terminal, rb.Terminal, owner)
				}
				// (4) route contiguity.
				prev := srcA
				for _, h := range ra1.Hops {
					if h.From != prev {
						t.Fatalf("discontiguous route: hop from %d, expected %d", h.From, prev)
					}
					prev = h.To
				}
				if len(ra1.Hops) > 0 && prev != ra1.Terminal {
					t.Fatalf("route does not end at the terminal")
				}
			}
		})
	}
}

// TestCrossDHTChurnInvariants drives every DHT through the same
// join/leave/stabilize cycle and re-checks lookup exactness.
func TestCrossDHTChurnInvariants(t *testing.T) {
	for _, name := range DHTNames {
		name := name
		t.Run(name, func(t *testing.T) {
			net, err := Build(name, 200, 31)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(32))
			for i := 0; i < 60; i++ {
				if _, err := net.Join(rng); err != nil {
					t.Fatal(err)
				}
				if err := net.Leave(overlay.RandomNode(net, rng)); err != nil {
					t.Fatal(err)
				}
			}
			for _, id := range append([]uint64(nil), net.NodeIDs()...) {
				net.Stabilize(id)
			}
			if net.Size() != 200 {
				t.Fatalf("size drifted to %d", net.Size())
			}
			for trial := 0; trial < 150; trial++ {
				key := overlay.RandomKey(net, rng)
				r := net.Lookup(overlay.RandomNode(net, rng), key)
				if r.Failed || r.Terminal != net.Responsible(key) {
					t.Fatalf("post-churn lookup diverged: %+v want %d", r, net.Responsible(key))
				}
				if r.Timeouts != 0 {
					t.Fatalf("timeouts after full stabilization: %+v", r)
				}
			}
		})
	}
}
