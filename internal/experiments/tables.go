package experiments

import (
	"fmt"
	"math/rand"

	"cycloid/internal/cycloid"
	"cycloid/internal/ids"
	"cycloid/internal/overlay"
	"cycloid/internal/stats"
	"cycloid/internal/viceroy"
	"cycloid/internal/workload"
)

// RunTable1 reproduces Table 1 — the architectural comparison of the
// DHTs — augmented with measured mean path lengths at n = 2048 so the
// asymptotic claims can be checked against this implementation.
func RunTable1(seed int64, lookups int) (Table, error) {
	if lookups == 0 {
		lookups = 20000
	}
	static := map[string][3]string{
		"cycloid-7":  {"CCC", "O(d)", "7"},
		"cycloid-11": {"CCC", "O(d)", "11"},
		"viceroy":    {"Butterfly", "O(log n)", "7"},
		"chord":      {"Cycle", "O(log n)", "O(log n)"},
		"koorde":     {"de Bruijn", "O(log n)", "7"},
	}
	t := Table{
		Caption: "Table 1: architectural comparison (measured at n = 2048)",
		Header:  []string{"system", "base network", "lookup complexity", "routing state", "measured mean path"},
	}
	for _, name := range DHTNames {
		net, err := Build(name, 2048, seed+hashName(name))
		if err != nil {
			return Table{}, err
		}
		rng := rand.New(rand.NewSource(seed))
		var paths stats.Sample
		workload.RandomPairs(net, lookups, rng, func(l workload.Lookup) {
			r := net.Lookup(l.Src, l.Key)
			if !r.Failed {
				paths.AddInt(r.PathLength())
			}
		})
		s := static[name]
		t.Rows = append(t.Rows, []string{name, s[0], s[1], s[2], f2(paths.Mean())})
	}
	return t, nil
}

// RunTable2 reproduces Table 2: the routing-table state of node
// (4,10110110) in an eight-dimensional Cycloid. The paper shows a partial
// network; this renders both the wildcard patterns (which are exact) and
// the resolved entries in the complete network.
func RunTable2() (Table, error) {
	net, err := cycloid.NewComplete(cycloid.Config{Dim: 8, LeafHalf: 1})
	if err != nil {
		return Table{}, err
	}
	ts, err := net.Table(ids.CycloidID{K: 4, A: 0b10110110})
	if err != nil {
		return Table{}, err
	}
	return Table{
		Caption: "Table 2: routing state of Cycloid node (4,10110110), d=8 (complete network)",
		Header:  []string{"entry", "value"},
		Rows: [][]string{
			{"cubical neighbor (pattern)", ts.CubicalPattern},
			{"cubical neighbor (resolved)", ts.Cubical},
			{"cyclic neighbor (larger)", ts.CyclicLarger},
			{"cyclic neighbor (smaller)", ts.CyclicSmaller},
			{"inside leaf set", fmt.Sprintf("%v | %v", ts.InsideLeft, ts.InsideRight)},
			{"outside leaf set", fmt.Sprintf("%v | %v", ts.OutsideLeft, ts.OutsideRight)},
		},
	}, nil
}

// RunTable3 reproduces Table 3: node identification and key assignment in
// the three constant-degree DHTs. The table is definitional; rendering it
// from code keeps it in sync with what the implementations actually do.
func RunTable3() Table {
	return Table{
		Caption: "Table 3: node identification and key assignment",
		Header:  []string{"", "cycloid", "viceroy", "koorde"},
		Rows: [][]string{
			{"base network", "CCC", "butterfly", "de Bruijn"},
			{"ID space", "([0,d), [0,2^d))", "([1,log n], [0,1))", "[0,2^d)"},
			{"node identity", "(k, a_{d-1}...a_0), k static", "(level, id), level dynamic", "id"},
			{"key placement", "numerically closest node", "successor", "successor"},
		},
	}
}

// MaintenanceReport summarizes protocol overhead counters after a churn
// bout on each DHT — the "cost for maintenance" dimension of Section 4.
func MaintenanceReport(nodes, events int, seed int64) (Table, error) {
	if nodes == 0 {
		nodes = 512
	}
	if events == 0 {
		events = 200
	}
	t := Table{
		Caption: fmt.Sprintf("Maintenance overhead after %d joins + %d leaves (n=%d)", events, events, nodes),
		Header:  []string{"system", "metric", "value"},
	}
	for _, name := range []string{"cycloid-7", "cycloid-11", "viceroy"} {
		net, err := Build(name, nodes, seed+hashName(name))
		if err != nil {
			return Table{}, err
		}
		rng := rand.New(rand.NewSource(seed + 1))
		for i := 0; i < events; i++ {
			if _, err := net.Join(rng); err != nil {
				return Table{}, err
			}
			if err := net.Leave(overlay.RandomNode(net, rng)); err != nil {
				return Table{}, err
			}
		}
		switch n := net.(type) {
		case *cycloid.Network:
			m := n.Maintenance()
			t.Rows = append(t.Rows,
				[]string{name, "join route hops", fmt.Sprintf("%d", m.JoinRouteHops)},
				[]string{name, "leaf-set updates", fmt.Sprintf("%d", m.LeafSetUpdates)},
			)
		case *viceroy.Network:
			m := n.Maintenance()
			t.Rows = append(t.Rows,
				[]string{name, "link updates", fmt.Sprintf("%d", m.LinkUpdates)},
				[]string{name, "level changes", fmt.Sprintf("%d", m.LevelChanges)},
			)
		}
	}
	return t, nil
}
