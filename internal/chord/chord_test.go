package chord

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cycloid/internal/overlay"
)

func mustRandom(t testing.TB, cfg Config, n int, seed int64) *Network {
	t.Helper()
	net, err := NewRandom(cfg, n, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func bruteResponsible(net *Network, key uint64) uint64 {
	var best uint64
	bestSet := false
	for _, v := range net.NodeIDs() {
		if !bestSet || net.ring.Clockwise(key, v) < net.ring.Clockwise(key, best) {
			best, bestSet = v, true
		}
	}
	return best
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{{Bits: 1, SuccessorList: 3}, {Bits: 33, SuccessorList: 3}, {Bits: 8, SuccessorList: 0}}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) should fail", c)
		}
	}
}

func TestResponsibleIsSuccessor(t *testing.T) {
	net := mustRandom(t, Config{Bits: 8, SuccessorList: 3}, 20, 1)
	for key := uint64(0); key < net.KeySpace(); key++ {
		if got, want := net.Responsible(key), bruteResponsible(net, key); got != want {
			t.Fatalf("Responsible(%d) = %d, want %d", key, got, want)
		}
	}
}

func TestLookupExact(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 3, 17, 100, 256} {
		net := mustRandom(t, Config{Bits: 10, SuccessorList: 3}, n, int64(n))
		for trial := 0; trial < 400; trial++ {
			src := overlay.RandomNode(net, rng)
			key := overlay.RandomKey(net, rng)
			res := net.Lookup(src, key)
			if res.Failed || res.Terminal != net.Responsible(key) {
				t.Fatalf("n=%d src=%d key=%d: %+v want %d", n, src, key, res, net.Responsible(key))
			}
			if res.Timeouts != 0 {
				t.Fatalf("timeouts in stable network: %+v", res)
			}
		}
	}
}

func TestLookupQuickProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, keyRaw uint16) bool {
		n := 1 + int(nRaw)%100
		net, err := NewRandom(Config{Bits: 10, SuccessorList: 4}, n, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed + 1))
		src := overlay.RandomNode(net, rng)
		key := uint64(keyRaw) % net.KeySpace()
		res := net.Lookup(src, key)
		return !res.Failed && res.Terminal == bruteResponsible(net, key)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLookupPathLengthLogarithmic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := mustRandom(t, Config{Bits: 11, SuccessorList: 3}, 2048, 7)
	total := 0
	const trials = 3000
	for i := 0; i < trials; i++ {
		res := net.Lookup(overlay.RandomNode(net, rng), overlay.RandomKey(net, rng))
		if res.Failed {
			t.Fatal("lookup failed")
		}
		total += res.PathLength()
	}
	mean := float64(total) / trials
	// Classic Chord: ~0.5*log2(n) = 5.5 for n=2048. Allow slack.
	if mean < 3 || mean > 8 {
		t.Errorf("mean path length %.2f outside the expected ~5.5 band", mean)
	}
}

func TestGracefulDepartureTimeoutsButNoFailures(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net := mustRandom(t, Config{Bits: 11, SuccessorList: 3}, 1024, 8)
	for i := 0; i < 300; i++ {
		if err := net.Leave(overlay.RandomNode(net, rng)); err != nil {
			t.Fatal(err)
		}
	}
	timeouts := 0
	for i := 0; i < 2000; i++ {
		res := net.Lookup(overlay.RandomNode(net, rng), overlay.RandomKey(net, rng))
		if res.Failed {
			t.Fatalf("lookup failed after graceful departures: %+v", res)
		}
		timeouts += res.Timeouts
	}
	if timeouts == 0 {
		t.Error("stale fingers should have produced timeouts")
	}
}

func TestStabilizeClearsTimeouts(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := mustRandom(t, Config{Bits: 10, SuccessorList: 3}, 500, 9)
	for i := 0; i < 150; i++ {
		if err := net.Leave(overlay.RandomNode(net, rng)); err != nil {
			t.Fatal(err)
		}
	}
	for _, v := range append([]uint64(nil), net.NodeIDs()...) {
		net.Stabilize(v)
	}
	for i := 0; i < 1000; i++ {
		res := net.Lookup(overlay.RandomNode(net, rng), overlay.RandomKey(net, rng))
		if res.Timeouts != 0 || res.Failed {
			t.Fatalf("after stabilization: %+v", res)
		}
	}
}

func TestJoinThenLookup(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := mustRandom(t, Config{Bits: 10, SuccessorList: 3}, 50, 10)
	for i := 0; i < 100; i++ {
		if _, err := net.Join(rng); err != nil {
			t.Fatal(err)
		}
		res := net.Lookup(overlay.RandomNode(net, rng), overlay.RandomKey(net, rng))
		if res.Failed {
			t.Fatalf("join %d: lookup failed: %+v", i, res)
		}
	}
	if net.Size() != 150 {
		t.Fatalf("size = %d, want 150", net.Size())
	}
}

func TestFingerHopsDominate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := mustRandom(t, Config{Bits: 11, SuccessorList: 3}, 2048, 11)
	finger, succ := 0, 0
	for i := 0; i < 1000; i++ {
		res := net.Lookup(overlay.RandomNode(net, rng), overlay.RandomKey(net, rng))
		finger += res.PhaseHops(overlay.PhaseFinger)
		succ += res.PhaseHops(overlay.PhaseSuccessor)
	}
	if finger <= succ {
		t.Errorf("finger hops (%d) should dominate successor hops (%d) in a converged network", finger, succ)
	}
}

func TestLookupFromOwner(t *testing.T) {
	net := mustRandom(t, Config{Bits: 8, SuccessorList: 3}, 10, 12)
	for _, v := range net.NodeIDs() {
		res := net.Lookup(v, v) // a node always owns its own ID
		if res.PathLength() != 0 || res.Terminal != v || res.Failed {
			t.Fatalf("self lookup: %+v", res)
		}
	}
}
