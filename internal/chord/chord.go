// Package chord implements the Chord DHT (Stoica et al.) as the O(log n)
// reference baseline the paper compares the constant-degree DHTs against.
// Each node keeps a finger table of m entries (finger[i] = successor of
// id + 2^i), a successor list, and a predecessor pointer; keys live at
// their successor; lookups forward through the closest preceding finger.
package chord

import (
	"errors"
	"fmt"
	"math/rand"

	"cycloid/internal/ids"
	"cycloid/internal/overlay"
	"cycloid/internal/sortedset"
)

// Config parameterizes a Chord network.
type Config struct {
	// Bits is m, the number of identifier bits; the ring holds 2^m IDs.
	Bits int
	// SuccessorList is the number of successors each node tracks. The
	// mass-departure experiment relies on these staying fresh (departing
	// nodes notify them) while fingers go stale.
	SuccessorList int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Bits < 2 || c.Bits > 32 {
		return fmt.Errorf("chord: bits %d out of range [2,32]", c.Bits)
	}
	if c.SuccessorList < 1 || c.SuccessorList > 32 {
		return fmt.Errorf("chord: successor list length %d out of range [1,32]", c.SuccessorList)
	}
	return nil
}

// ErrFull reports a fully occupied identifier space.
var ErrFull = errors.New("chord: identifier space is full")

// ErrUnknownNode reports an operation on a non-live node.
var ErrUnknownNode = errors.New("chord: node not in network")

type ref struct {
	id uint64
	ok bool
}

func mkref(id uint64) ref { return ref{id: id, ok: true} }

// Node is one Chord participant.
type Node struct {
	id      uint64
	fingers []ref // fingers[i] = successor(id + 2^i)
	succs   []ref // successor list, nearest first
	pred    ref
}

// Network is an in-memory Chord overlay.
type Network struct {
	cfg   Config
	ring  ids.Ring
	nodes map[uint64]*Node

	sorted []uint64 // sorted live node IDs, maintained incrementally
}

// New returns an empty network.
func New(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Network{
		cfg:   cfg,
		ring:  ids.NewRing(cfg.Bits),
		nodes: make(map[uint64]*Node),
	}, nil
}

// NewRandom builds a converged network of n nodes at distinct random IDs.
func NewRandom(cfg Config, n int, rng *rand.Rand) (*Network, error) {
	net, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if uint64(n) > net.ring.Size() {
		return nil, fmt.Errorf("chord: %d nodes exceed ring of %d", n, net.ring.Size())
	}
	if uint64(n)*2 > net.ring.Size() {
		perm := rng.Perm(int(net.ring.Size()))
		for _, p := range perm[:n] {
			net.addMember(uint64(p))
		}
	} else {
		for len(net.nodes) < n {
			v := uint64(rng.Int63n(int64(net.ring.Size())))
			if _, taken := net.nodes[v]; !taken {
				net.addMember(v)
			}
		}
	}
	net.BuildAll()
	return net, nil
}

// Name implements overlay.Network.
func (net *Network) Name() string { return "chord" }

// KeySpace implements overlay.Network.
func (net *Network) KeySpace() uint64 { return net.ring.Size() }

// Size returns the number of live nodes.
func (net *Network) Size() int { return len(net.nodes) }

// NodeIDs returns the sorted live node IDs, maintained incrementally by
// addMember/removeMember.
func (net *Network) NodeIDs() []uint64 { return net.sorted }

// Contains implements overlay.Network: O(1) liveness check.
func (net *Network) Contains(id uint64) bool {
	_, ok := net.nodes[id]
	return ok
}

func (net *Network) addMember(id uint64) *Node {
	n := &Node{id: id}
	net.nodes[id] = n
	net.sorted = sortedset.Insert(net.sorted, id)
	return n
}

func (net *Network) removeMember(id uint64) {
	delete(net.nodes, id)
	net.sorted = sortedset.Delete(net.sorted, id)
}

// successorOf returns the first live node at or after v (clockwise).
func (net *Network) successorOf(v uint64) uint64 {
	s := net.NodeIDs()
	pos := sortedset.Search(s, v)
	return s[pos%len(s)]
}

// predecessorOf returns the last live node strictly before v.
func (net *Network) predecessorOf(v uint64) uint64 {
	s := net.NodeIDs()
	pos := sortedset.Search(s, v)
	return s[((pos-1)%len(s)+len(s))%len(s)]
}

// Responsible implements overlay.Network: keys live at their successor.
func (net *Network) Responsible(key uint64) uint64 {
	if len(net.nodes) == 0 {
		panic("chord: Responsible on empty network")
	}
	return net.successorOf(key)
}

// BuildAll recomputes every node's state from the membership.
func (net *Network) BuildAll() {
	for _, n := range net.nodes {
		net.buildNode(n)
	}
}

func (net *Network) buildNode(n *Node) {
	net.buildFingers(n)
	net.buildSuccessors(n)
	n.pred = mkref(net.predecessorOf(n.id))
}

func (net *Network) buildFingers(n *Node) {
	m := net.cfg.Bits
	if cap(n.fingers) < m {
		n.fingers = make([]ref, m)
	}
	n.fingers = n.fingers[:m]
	for i := 0; i < m; i++ {
		n.fingers[i] = mkref(net.successorOf(net.ring.Add(n.id, 1<<uint(i))))
	}
}

func (net *Network) buildSuccessors(n *Node) {
	L := net.cfg.SuccessorList
	n.succs = n.succs[:0]
	cur := n.id
	for i := 0; i < L; i++ {
		cur = net.successorOf(net.ring.Add(cur, 1))
		n.succs = append(n.succs, mkref(cur))
		if cur == n.id {
			break // wrapped: fewer live nodes than list slots
		}
	}
}

// Lookup implements overlay.Network. Finger hops are tagged PhaseFinger
// and successor(-list) hops PhaseSuccessor, enabling the same per-phase
// accounting as the other DHTs.
func (net *Network) Lookup(src, key uint64) overlay.Result {
	res := overlay.Result{Key: key, Source: src}
	cur, ok := net.nodes[src]
	if !ok {
		res.Failed = true
		return res
	}
	budget := 8*net.cfg.Bits + 64
	for {
		// Already the owner?
		if cur.pred.ok && net.ring.Between(key, cur.pred.id, cur.id) {
			break
		}
		succ, timeouts := net.firstLiveSuccessor(cur)
		res.Timeouts += timeouts
		if succ == nil {
			res.Failed = true
			break
		}
		if succ.id == cur.id {
			break // single live node
		}
		if net.ring.Between(key, cur.id, succ.id) {
			// Final hop: the successor owns the key.
			res.Hops = append(res.Hops, overlay.Hop{From: cur.id, To: succ.id, Phase: overlay.PhaseSuccessor})
			cur = succ
			break
		}
		next, phase, timeouts := net.closestPreceding(cur, key, succ)
		res.Timeouts += timeouts
		res.Hops = append(res.Hops, overlay.Hop{From: cur.id, To: next.id, Phase: phase})
		cur = next
		if len(res.Hops) >= budget {
			res.Failed = true
			break
		}
	}
	res.Terminal = cur.id
	if !res.Failed {
		res.Failed = res.Terminal != net.Responsible(key)
	}
	return res
}

// firstLiveSuccessor resolves the successor list, counting a timeout per
// departed entry tried.
func (net *Network) firstLiveSuccessor(n *Node) (*Node, int) {
	timeouts := 0
	for _, r := range n.succs {
		if !r.ok {
			continue
		}
		if s, live := net.nodes[r.id]; live {
			return s, timeouts
		}
		timeouts++
	}
	return nil, timeouts
}

// closestPreceding picks the highest finger in (cur, key), falling back
// through lower fingers (a timeout per departed finger tried) and finally
// the live successor.
func (net *Network) closestPreceding(cur *Node, key uint64, liveSucc *Node) (*Node, overlay.Phase, int) {
	timeouts := 0
	for i := len(cur.fingers) - 1; i >= 0; i-- {
		f := cur.fingers[i]
		if !f.ok || f.id == cur.id {
			continue
		}
		if !net.ring.BetweenOpen(f.id, cur.id, key) {
			continue
		}
		if n, live := net.nodes[f.id]; live {
			return n, overlay.PhaseFinger, timeouts
		}
		timeouts++
	}
	return liveSucc, overlay.PhaseSuccessor, timeouts
}

// Join implements overlay.Churner: the new node builds its own state and
// notifies its neighbors on the ring (predecessor's successor lists and
// successor's predecessor pointer); other nodes' fingers stay stale until
// stabilization.
func (net *Network) Join(rng *rand.Rand) (uint64, error) {
	size := net.ring.Size()
	if uint64(len(net.nodes)) == size {
		return 0, ErrFull
	}
	var v uint64
	for {
		v = uint64(rng.Int63n(int64(size)))
		if _, taken := net.nodes[v]; !taken {
			break
		}
	}
	n := net.addMember(v)
	net.buildNode(n)
	net.repairNeighborhood(v)
	return v, nil
}

// Leave implements overlay.Churner: graceful departure notifies the
// predecessor(s) and successor, keeping successor lists and predecessor
// pointers fresh; fingers pointing at the departed node go stale.
func (net *Network) Leave(id uint64) error {
	if _, ok := net.nodes[id]; !ok {
		return ErrUnknownNode
	}
	net.removeMember(id)
	if len(net.nodes) == 0 {
		return nil
	}
	net.repairNeighborhood(id)
	return nil
}

// repairNeighborhood rewrites the successor lists of the SuccessorList
// live nodes preceding position v and the predecessor pointer of the node
// following it — the converged effect of Chord's join/leave notifications.
func (net *Network) repairNeighborhood(v uint64) {
	succ := net.nodes[net.successorOf(v)]
	succ.pred = mkref(net.predecessorOf(succ.id))
	cur := v
	for i := 0; i < net.cfg.SuccessorList; i++ {
		p := net.predecessorOf(cur)
		n := net.nodes[p]
		net.buildSuccessors(n)
		n.pred = mkref(net.predecessorOf(n.id))
		cur = p
		if p == v {
			break
		}
	}
	// The joining/leaving position's successor also refreshes its list.
	net.buildSuccessors(succ)
}

// Stabilize implements overlay.Churner: one node refreshes its fingers,
// successor list and predecessor from the live membership.
func (net *Network) Stabilize(id uint64) {
	n, ok := net.nodes[id]
	if !ok {
		return
	}
	net.buildNode(n)
}
