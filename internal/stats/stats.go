// Package stats implements the summary statistics the paper reports:
// means, variances, and exact 1st/99th percentiles of hop counts, timeout
// counts, key loads and query loads.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates float64 observations and produces summaries.
// The zero value is an empty sample ready to use.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add appends one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// AddInt appends one integer observation.
func (s *Sample) AddInt(x int) { s.Add(float64(x)) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Variance returns the population variance, or 0 for fewer than two
// observations.
func (s *Sample) Variance() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	sum := 0.0
	for _, x := range s.xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(n)
}

// StdDev returns the population standard deviation.
func (s *Sample) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.xs[0]
}

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.xs[len(s.xs)-1]
}

// Percentile returns the p-th percentile (p in [0,100]) using the
// nearest-rank method on the sorted sample, the convention the paper's
// "1st and 99th percentiles" plots use. It returns 0 for an empty sample
// and panics for p outside [0,100].
func (s *Sample) Percentile(p float64) float64 {
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range", p))
	}
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	s.ensureSorted()
	if p == 0 {
		return s.xs[0]
	}
	rank := int(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return s.xs[rank-1]
}

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Summary is the (mean, 1st percentile, 99th percentile) triple the paper
// plots for key distribution, query load and timeout counts.
type Summary struct {
	N    int
	Mean float64
	P1   float64
	P99  float64
	Min  float64
	Max  float64
	Var  float64
}

// Summarize produces the paper-style summary of the sample.
func (s *Sample) Summarize() Summary {
	return Summary{
		N:    s.N(),
		Mean: s.Mean(),
		P1:   s.Percentile(1),
		P99:  s.Percentile(99),
		Min:  s.Min(),
		Max:  s.Max(),
		Var:  s.Variance(),
	}
}

func (sm Summary) String() string {
	return fmt.Sprintf("mean=%.2f p1=%.0f p99=%.0f min=%.0f max=%.0f n=%d",
		sm.Mean, sm.P1, sm.P99, sm.Min, sm.Max, sm.N)
}

// Counter tallies integer-keyed event counts, e.g. messages received per
// node or hops per phase.
type Counter struct {
	m map[uint64]int
}

// NewCounter returns an empty counter.
func NewCounter() *Counter { return &Counter{m: make(map[uint64]int)} }

// Inc adds delta to the count for key.
func (c *Counter) Inc(key uint64, delta int) { c.m[key] += delta }

// Get returns the count for key.
func (c *Counter) Get(key uint64) int { return c.m[key] }

// Len returns the number of distinct keys observed.
func (c *Counter) Len() int { return len(c.m) }

// Sample converts the counts (including zeros for the provided universe of
// keys, so unloaded nodes drag the 1st percentile down exactly as in the
// paper) into a Sample.
func (c *Counter) Sample(universe []uint64) *Sample {
	var s Sample
	for _, k := range universe {
		s.AddInt(c.m[k])
	}
	return &s
}
