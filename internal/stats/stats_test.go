package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestEmptySample(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Mean() != 0 || s.Variance() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Error("empty sample should summarize to zeros")
	}
	if s.Percentile(50) != 0 {
		t.Error("Percentile on empty sample should be 0")
	}
}

func TestMeanVariance(t *testing.T) {
	var s Sample
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if !almost(s.Mean(), 5) {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	if !almost(s.Variance(), 4) {
		t.Errorf("Variance = %v, want 4", s.Variance())
	}
	if !almost(s.StdDev(), 2) {
		t.Errorf("StdDev = %v, want 2", s.StdDev())
	}
}

func TestMinMax(t *testing.T) {
	var s Sample
	for _, x := range []float64{3, -1, 7, 0} {
		s.Add(x)
	}
	if s.Min() != -1 || s.Max() != 7 {
		t.Errorf("Min/Max = %v/%v, want -1/7", s.Min(), s.Max())
	}
}

func TestPercentileNearestRank(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.AddInt(i)
	}
	cases := []struct {
		p, want float64
	}{
		{0, 1}, {1, 1}, {50, 50}, {99, 99}, {100, 100},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentilePanicsOutOfRange(t *testing.T) {
	var s Sample
	s.Add(1)
	for _, p := range []float64{-1, 101} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Percentile(%v) did not panic", p)
				}
			}()
			s.Percentile(p)
		}()
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			s.Add(x)
		}
		pa := float64(a % 101)
		pb := float64(b % 101)
		if pa > pb {
			pa, pb = pb, pa
		}
		return s.Percentile(pa) <= s.Percentile(pb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentileBoundsProperty(t *testing.T) {
	f := func(raw []float64, p uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			s.Add(x)
		}
		v := s.Percentile(float64(p % 101))
		return v >= s.Min() && v <= s.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddAfterPercentileResorts(t *testing.T) {
	var s Sample
	s.Add(5)
	_ = s.Percentile(50)
	s.Add(1)
	if s.Min() != 1 {
		t.Error("sample did not re-sort after Add following Percentile")
	}
}

func TestSummarize(t *testing.T) {
	var s Sample
	rng := rand.New(rand.NewSource(7))
	raw := make([]float64, 1000)
	for i := range raw {
		raw[i] = rng.Float64() * 100
		s.Add(raw[i])
	}
	sum := s.Summarize()
	sort.Float64s(raw)
	if sum.N != 1000 {
		t.Errorf("N = %d", sum.N)
	}
	if sum.P1 != raw[9] { // ceil(0.01*1000)=10 -> index 9
		t.Errorf("P1 = %v, want %v", sum.P1, raw[9])
	}
	if sum.P99 != raw[989] {
		t.Errorf("P99 = %v, want %v", sum.P99, raw[989])
	}
	if sum.Min != raw[0] || sum.Max != raw[999] {
		t.Error("Min/Max mismatch")
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Inc(3, 1)
	c.Inc(3, 2)
	c.Inc(9, 5)
	if c.Get(3) != 3 || c.Get(9) != 5 || c.Get(1) != 0 {
		t.Error("counter arithmetic wrong")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
	s := c.Sample([]uint64{1, 3, 9})
	if s.N() != 3 {
		t.Fatalf("Sample N = %d, want 3", s.N())
	}
	if s.Min() != 0 {
		t.Error("universe key with no events should contribute a zero")
	}
	if !almost(s.Mean(), 8.0/3.0) {
		t.Errorf("Mean = %v, want 8/3", s.Mean())
	}
}
