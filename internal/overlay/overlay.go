// Package overlay defines the transport-agnostic abstractions all four
// DHT implementations share: hop-by-hop lookup traces with per-phase tags,
// timeout accounting for stale routing entries, and the Network/Churner
// interfaces the experiment harness drives.
//
// Lookups execute as synchronous walks over in-memory node structures.
// Every hop is a message arrival at a node, so query-load and congestion
// metrics fall directly out of the recorded traces.
package overlay

import "math/rand"

// Phase labels one routing hop with the algorithmic phase that produced
// it, the classification Figures 7 and 14 of the paper break lookup cost
// down by.
type Phase int

const (
	// PhaseAscending is Cycloid's and Viceroy's climb toward a routable
	// level/cyclic index.
	PhaseAscending Phase = iota
	// PhaseDescending is prefix/level correction (Cycloid cubical+cyclic
	// hops, Viceroy down links).
	PhaseDescending
	// PhaseTraverse is the final closing-in through leaf sets or rings.
	PhaseTraverse
	// PhaseDeBruijn is a Koorde imaginary-node de Bruijn hop.
	PhaseDeBruijn
	// PhaseSuccessor is a Koorde or Chord successor hop.
	PhaseSuccessor
	// PhaseFinger is a Chord finger hop.
	PhaseFinger
)

var phaseNames = map[Phase]string{
	PhaseAscending:  "ascending",
	PhaseDescending: "descending",
	PhaseTraverse:   "traverse",
	PhaseDeBruijn:   "debruijn",
	PhaseSuccessor:  "successor",
	PhaseFinger:     "finger",
}

func (p Phase) String() string {
	if s, ok := phaseNames[p]; ok {
		return s
	}
	return "unknown"
}

// Hop is one message forwarding step of a lookup.
type Hop struct {
	From  uint64 // linearized ID of the forwarding node
	To    uint64 // linearized ID of the receiving node
	Phase Phase
}

// Result is the outcome of one lookup request.
type Result struct {
	Key      uint64 // the looked-up key, in the network's key space
	Source   uint64 // linearized ID of the originating node
	Terminal uint64 // linearized ID of the node the lookup ended at
	Hops     []Hop
	Timeouts int  // departed nodes contacted along the way
	Failed   bool // true if routing could not reach any responsible node
}

// PathLength returns the number of hops traversed.
func (r Result) PathLength() int { return len(r.Hops) }

// PhaseHops returns how many hops carry the given phase tag.
func (r Result) PhaseHops(p Phase) int {
	n := 0
	for _, h := range r.Hops {
		if h.Phase == p {
			n++
		}
	}
	return n
}

// Network is the read/lookup surface every DHT implementation exposes to
// the experiment harness. Node identifiers are linearized into uint64 so
// the harness can stay agnostic of each DHT's native ID shape.
type Network interface {
	// Name identifies the DHT variant, e.g. "cycloid-7" or "koorde".
	Name() string
	// KeySpace returns the size of the key space; lookup keys are drawn
	// uniformly from [0, KeySpace()).
	KeySpace() uint64
	// Size returns the number of live nodes.
	Size() int
	// NodeIDs returns the sorted linearized IDs of all live nodes. The
	// returned slice must not be modified by the caller.
	NodeIDs() []uint64
	// Contains reports whether id is a live node, in O(1). Liveness
	// checks (e.g. churn-timer guards) must use this instead of scanning
	// NodeIDs.
	Contains(id uint64) bool
	// Lookup routes a request for key from the live node src.
	Lookup(src, key uint64) Result
	// Responsible returns the linearized ID of the node that should store
	// key under the DHT's placement rule, the ground truth lookups are
	// checked against.
	Responsible(key uint64) uint64
}

// Churner extends Network with the membership dynamics the failure and
// churn experiments (Sections 4.3 and 4.4 of the paper) exercise.
type Churner interface {
	Network
	// Join adds one node at a random unoccupied position, running the
	// DHT's join protocol, and returns its linearized ID.
	Join(rng *rand.Rand) (uint64, error)
	// Leave performs a graceful departure of the given node: the DHT's
	// notification protocol runs, but entries the protocol does not cover
	// are left stale.
	Leave(id uint64) error
	// Stabilize runs one node's periodic stabilization, repairing its
	// routing state from the current membership.
	Stabilize(id uint64)
}

// RandomNode returns a uniformly random live node ID.
func RandomNode(n Network, rng *rand.Rand) uint64 {
	idsl := n.NodeIDs()
	return idsl[rng.Intn(len(idsl))]
}

// RandomKey returns a uniformly random key in the network's key space.
func RandomKey(n Network, rng *rand.Rand) uint64 {
	return uint64(rng.Int63n(int64(n.KeySpace())))
}
