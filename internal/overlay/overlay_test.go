package overlay

import (
	"math/rand"
	"testing"
)

func TestPhaseString(t *testing.T) {
	cases := map[Phase]string{
		PhaseAscending:  "ascending",
		PhaseDescending: "descending",
		PhaseTraverse:   "traverse",
		PhaseDeBruijn:   "debruijn",
		PhaseSuccessor:  "successor",
		PhaseFinger:     "finger",
		Phase(99):       "unknown",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("Phase(%d).String() = %q, want %q", p, got, want)
		}
	}
}

func TestResultAccounting(t *testing.T) {
	r := Result{
		Hops: []Hop{
			{From: 1, To: 2, Phase: PhaseAscending},
			{From: 2, To: 3, Phase: PhaseDescending},
			{From: 3, To: 4, Phase: PhaseDescending},
			{From: 4, To: 5, Phase: PhaseTraverse},
		},
	}
	if r.PathLength() != 4 {
		t.Errorf("PathLength = %d, want 4", r.PathLength())
	}
	if r.PhaseHops(PhaseDescending) != 2 {
		t.Errorf("descending hops = %d, want 2", r.PhaseHops(PhaseDescending))
	}
	if r.PhaseHops(PhaseFinger) != 0 {
		t.Errorf("finger hops = %d, want 0", r.PhaseHops(PhaseFinger))
	}
}

type fakeNet struct {
	ids []uint64
}

func (f fakeNet) Name() string      { return "fake" }
func (f fakeNet) KeySpace() uint64  { return 100 }
func (f fakeNet) Size() int         { return len(f.ids) }
func (f fakeNet) NodeIDs() []uint64 { return f.ids }
func (f fakeNet) Contains(id uint64) bool {
	for _, v := range f.ids {
		if v == id {
			return true
		}
	}
	return false
}
func (f fakeNet) Lookup(s, k uint64) Result   { return Result{} }
func (f fakeNet) Responsible(k uint64) uint64 { return 0 }

func TestRandomHelpers(t *testing.T) {
	n := fakeNet{ids: []uint64{10, 20, 30}}
	rng := rand.New(rand.NewSource(1))
	seen := map[uint64]bool{}
	for i := 0; i < 200; i++ {
		id := RandomNode(n, rng)
		if id != 10 && id != 20 && id != 30 {
			t.Fatalf("RandomNode returned non-member %d", id)
		}
		seen[id] = true
		k := RandomKey(n, rng)
		if k >= 100 {
			t.Fatalf("RandomKey out of range: %d", k)
		}
	}
	if len(seen) != 3 {
		t.Errorf("RandomNode never hit all members: %v", seen)
	}
}
