package hashing

import (
	"fmt"
	"testing"
)

func TestHash64Deterministic(t *testing.T) {
	a := HashString("hello")
	b := HashString("hello")
	if a != b {
		t.Fatalf("HashString not deterministic: %d != %d", a, b)
	}
	if a == HashString("hello!") {
		t.Fatal("distinct keys hashed to the same value (astronomically unlikely)")
	}
}

func TestHash64KnownValue(t *testing.T) {
	// SHA-1("abc") = a9993e36 4706816a ...; the first 8 bytes big-endian.
	want := uint64(0xa9993e364706816a)
	if got := HashString("abc"); got != want {
		t.Fatalf("HashString(abc) = %x, want %x", got, want)
	}
}

func TestFoldRange(t *testing.T) {
	for i := 0; i < 1000; i++ {
		v := KeyString(fmt.Sprintf("key-%d", i), 2048)
		if v >= 2048 {
			t.Fatalf("KeyString out of range: %d", v)
		}
	}
}

func TestFoldPanicsOnEmptySpace(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Fold(_, 0) did not panic")
		}
	}()
	Fold(1, 0)
}

func TestFoldUniformity(t *testing.T) {
	// Chi-squared style sanity check: 100k keys over 64 buckets should
	// put roughly 1562 keys in each; allow generous +-20%.
	const keys, buckets = 100000, 64
	counts := make([]int, buckets)
	for i := 0; i < keys; i++ {
		counts[KeyString(fmt.Sprintf("uniform-%d", i), buckets)]++
	}
	want := keys / buckets
	for b, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Errorf("bucket %d has %d keys, want within 20%% of %d", b, c, want)
		}
	}
}

func TestNodeSeedDistinct(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		h := NodeSeed("10.0.0.1:4000", i)
		if seen[h] {
			t.Fatalf("duplicate node seed at index %d", i)
		}
		seen[h] = true
	}
	if NodeSeed("a", 1) == NodeSeed("b", 1) {
		t.Error("different addresses produced the same seed")
	}
}
