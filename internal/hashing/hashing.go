// Package hashing provides the consistent-hashing layer every DHT in this
// repository shares: stable SHA-1 based mapping from arbitrary byte keys
// (file names, node addresses) to positions in an identifier space.
package hashing

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"
)

// Hash64 maps data to a uniformly distributed 64-bit value using SHA-1,
// the hash the original DHT papers assume.
func Hash64(data []byte) uint64 {
	sum := sha1.Sum(data)
	return binary.BigEndian.Uint64(sum[:8])
}

// HashString is Hash64 for string keys.
func HashString(s string) uint64 {
	return Hash64([]byte(s))
}

// Fold maps a 64-bit hash onto an identifier space of the given size
// with negligible modulo bias (size is at most 2^33 in this repository,
// far below 2^64).
func Fold(h, size uint64) uint64 {
	if size == 0 {
		panic("hashing: fold into empty space")
	}
	return h % size
}

// KeyString maps an application key onto a space of the given size.
func KeyString(s string, size uint64) uint64 {
	return Fold(HashString(s), size)
}

// NodeSeed derives a stable per-node hash from a logical address, e.g.
// "10.0.0.7:4001" or "node-1723", the way deployed DHTs derive node IDs
// from network addresses.
func NodeSeed(addr string, index int) uint64 {
	return Hash64([]byte(fmt.Sprintf("%s#%d", addr, index)))
}
