package cycloid

import (
	"fmt"
	"sync"
	"testing"
)

func TestBootstrapAndLookup(t *testing.T) {
	d, err := Bootstrap(500, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 500 || d.Dim() != 8 {
		t.Fatalf("Size/Dim = %d/%d", d.Size(), d.Dim())
	}
	nodes := d.Nodes()
	if len(nodes) != 500 {
		t.Fatalf("Nodes() returned %d", len(nodes))
	}
	owner, err := d.Owner("hello")
	if err != nil {
		t.Fatal(err)
	}
	for _, from := range nodes[:50] {
		r, err := d.Lookup(from, "hello")
		if err != nil {
			t.Fatal(err)
		}
		if r.Terminal != owner {
			t.Fatalf("lookup from %v ended at %v, owner is %v", from, r.Terminal, owner)
		}
		if r.PathLength() > 0 && r.Hops[0].From != from {
			t.Fatal("route does not start at the source")
		}
	}
}

func TestPutGetDelete(t *testing.T) {
	d, err := Bootstrap(200, Options{Dim: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("movie.mkv", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	from := d.Nodes()[0]
	val, route, err := d.Get(from, "movie.mkv")
	if err != nil {
		t.Fatal(err)
	}
	if string(val) != "payload" {
		t.Fatalf("Get = %q", val)
	}
	if route.Key != "movie.mkv" {
		t.Fatalf("route key = %q", route.Key)
	}
	if _, _, err := d.Get(from, "missing"); err != ErrNotFound {
		t.Fatalf("Get(missing) = %v, want ErrNotFound", err)
	}
	if err := d.Delete("movie.mkv"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Get(from, "movie.mkv"); err != ErrNotFound {
		t.Fatal("value survived Delete")
	}
	if err := d.Delete("movie.mkv"); err != ErrNotFound {
		t.Fatalf("Delete(missing) = %v", err)
	}
}

func TestKeysSurviveChurn(t *testing.T) {
	d, err := Bootstrap(100, Options{Dim: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	const items = 200
	for i := 0; i < items; i++ {
		if err := d.Put(fmt.Sprintf("item-%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Churn: joins pull keys over, graceful leaves hand keys off.
	for round := 0; round < 40; round++ {
		if _, err := d.Join(); err != nil {
			t.Fatal(err)
		}
		if err := d.Leave(d.Nodes()[round%d.Size()]); err != nil {
			t.Fatal(err)
		}
	}
	d.Stabilize()
	from := d.Nodes()[0]
	for i := 0; i < items; i++ {
		key := fmt.Sprintf("item-%d", i)
		val, _, err := d.Get(from, key)
		if err != nil {
			t.Fatalf("%s lost during churn: %v", key, err)
		}
		if val[0] != byte(i) {
			t.Fatalf("%s corrupted", key)
		}
	}
	total := 0
	for _, c := range d.Keys() {
		total += c
	}
	if total != items {
		t.Fatalf("Keys() counts %d items, want %d", total, items)
	}
}

func TestJoinAtAndRoutingTable(t *testing.T) {
	d, err := Bootstrap(10, Options{Dim: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var free NodeID
	taken := make(map[NodeID]bool)
	for _, id := range d.Nodes() {
		taken[id] = true
	}
	for k := 0; k < 5 && taken[free]; k++ {
		for a := uint32(0); a < 32; a++ {
			free = NodeID{K: uint8(k), A: a}
			if !taken[free] {
				break
			}
		}
	}
	if err := d.JoinAt(free); err != nil {
		t.Fatal(err)
	}
	if err := d.JoinAt(free); err == nil {
		t.Fatal("JoinAt occupied position should fail")
	}
	if err := d.JoinAt(NodeID{K: 31, A: 0}); err == nil {
		t.Fatal("JoinAt out-of-space ID should fail")
	}
	table, err := d.RoutingTable(free)
	if err != nil {
		t.Fatal(err)
	}
	if len(table) == 0 {
		t.Fatal("empty routing table render")
	}
}

func TestEmptyNetworkErrors(t *testing.T) {
	d, err := New(Options{Dim: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("k", nil); err != ErrEmpty {
		t.Fatalf("Put on empty = %v", err)
	}
	if _, err := d.Owner("k"); err != ErrEmpty {
		t.Fatalf("Owner on empty = %v", err)
	}
	if _, err := d.Lookup(NodeID{}, "k"); err != ErrEmpty {
		t.Fatalf("Lookup on empty = %v", err)
	}
}

func TestRouteString(t *testing.T) {
	d, err := Bootstrap(64, Options{Dim: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	r, err := d.Lookup(d.Nodes()[0], "some-key")
	if err != nil {
		t.Fatal(err)
	}
	s := r.String()
	if len(s) == 0 {
		t.Fatal("empty route string")
	}
	if r.PathLength() > 0 {
		if r.PhaseHops(Ascending)+r.PhaseHops(Descending)+r.PhaseHops(Traverse) != r.PathLength() {
			t.Fatal("phase hops do not add up to path length")
		}
	}
}

func TestConcurrentUse(t *testing.T) {
	d, err := Bootstrap(128, Options{Dim: 7, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			from := d.Nodes()[g]
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("g%d-i%d", g, i)
				if err := d.Put(key, []byte(key)); err != nil {
					errs <- err
					return
				}
				if _, _, err := d.Get(from, key); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
