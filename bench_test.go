package cycloid_test

// One benchmark per table and figure of the paper's evaluation, plus
// microbenchmarks for the library's hot paths. The workloads themselves
// live in internal/bench so that cmd/cycloid-bench -json can run the
// same cases via testing.Benchmark and record ns/op, B/op and allocs/op
// to BENCH_cycloid.json; these wrappers only bind them to `go test
// -bench` names. Run cmd/cycloid-bench for the full paper-scale sweeps
// and formatted output.

import (
	"testing"

	"cycloid/internal/bench"
)

func BenchmarkTable1Lookup(b *testing.B)        { bench.Run(b, "Table1Lookup") }
func BenchmarkFig5PathLength(b *testing.B)      { bench.Run(b, "Fig5PathLength") }
func BenchmarkFig7Breakdown(b *testing.B)       { bench.Run(b, "Fig7Breakdown") }
func BenchmarkFig8KeyDistribution(b *testing.B) { bench.Run(b, "Fig8KeyDistribution") }
func BenchmarkFig9KeyDistributionSparse(b *testing.B) {
	bench.Run(b, "Fig9KeyDistributionSparse")
}
func BenchmarkFig10QueryLoad(b *testing.B)        { bench.Run(b, "Fig10QueryLoad") }
func BenchmarkFig11MassDeparture(b *testing.B)    { bench.Run(b, "Fig11MassDeparture") }
func BenchmarkFig12Churn(b *testing.B)            { bench.Run(b, "Fig12Churn") }
func BenchmarkFig13Sparsity(b *testing.B)         { bench.Run(b, "Fig13Sparsity") }
func BenchmarkFig14KoordeBreakdown(b *testing.B)  { bench.Run(b, "Fig14KoordeBreakdown") }
func BenchmarkAblationLeafSet(b *testing.B)       { bench.Run(b, "AblationLeafSet") }
func BenchmarkAblationStabilization(b *testing.B) { bench.Run(b, "AblationStabilization") }
func BenchmarkUngracefulFailures(b *testing.B)    { bench.Run(b, "UngracefulFailures") }
func BenchmarkLookup(b *testing.B)                { bench.Run(b, "Lookup") }
func BenchmarkLookupInstrumented(b *testing.B)    { bench.Run(b, "LookupInstrumented") }
func BenchmarkPutGet(b *testing.B)                { bench.Run(b, "PutGet") }
func BenchmarkJoinLeave(b *testing.B)             { bench.Run(b, "JoinLeave") }
func BenchmarkReplicatedPut(b *testing.B)         { bench.Run(b, "ReplicatedPut") }
func BenchmarkPutDurable(b *testing.B)            { bench.Run(b, "PutDurable") }
func BenchmarkPutDurableNoSync(b *testing.B)      { bench.Run(b, "PutDurableNoSync") }
func BenchmarkGetWithOwnerDown(b *testing.B)      { bench.Run(b, "GetWithOwnerDown") }
func BenchmarkPooledLookup(b *testing.B)          { bench.Run(b, "PooledLookup") }
func BenchmarkPooledLookupJSON(b *testing.B)      { bench.Run(b, "PooledLookupJSON") }
func BenchmarkLookupDialPerRequest(b *testing.B)  { bench.Run(b, "LookupDialPerRequest") }
func BenchmarkLookupUnderShedding(b *testing.B)   { bench.Run(b, "LookupUnderShedding") }
func BenchmarkLookupTraced(b *testing.B)          { bench.Run(b, "LookupTraced") }
func BenchmarkLookupTracedUnsampled(b *testing.B) { bench.Run(b, "LookupTracedUnsampled") }
func BenchmarkBlobRead(b *testing.B)              { bench.Run(b, "BlobRead") }
func BenchmarkBlobReadPrefetch(b *testing.B)      { bench.Run(b, "BlobReadPrefetch") }
func BenchmarkBlobWrite(b *testing.B)             { bench.Run(b, "BlobWrite") }

// TestBenchWrappersCoverRegistry keeps the wrapper list above in sync
// with the internal/bench registry.
func TestBenchWrappersCoverRegistry(t *testing.T) {
	want := map[string]bool{
		"Table1Lookup": true, "Fig5PathLength": true, "Fig7Breakdown": true,
		"Fig8KeyDistribution": true, "Fig9KeyDistributionSparse": true,
		"Fig10QueryLoad": true, "Fig11MassDeparture": true, "Fig12Churn": true,
		"Fig13Sparsity": true, "Fig14KoordeBreakdown": true,
		"AblationLeafSet": true, "AblationStabilization": true,
		"UngracefulFailures": true, "Lookup": true,
		"LookupInstrumented": true, "PutGet": true,
		"JoinLeave": true, "ReplicatedPut": true, "PutDurable": true,
		"PutDurableNoSync": true, "GetWithOwnerDown": true,
		"PooledLookup": true, "PooledLookupJSON": true, "LookupDialPerRequest": true,
		"LookupUnderShedding": true,
		"LookupTraced":        true, "LookupTracedUnsampled": true,
		"BlobRead": true, "BlobReadPrefetch": true, "BlobWrite": true,
	}
	cases := bench.Cases()
	if len(cases) != len(want) {
		t.Fatalf("registry has %d cases, wrappers cover %d", len(cases), len(want))
	}
	for _, c := range cases {
		if !want[c.Name] {
			t.Errorf("registry case %q has no go test wrapper", c.Name)
		}
	}
}
