package cycloid

// One benchmark per table and figure of the paper's evaluation. Each
// iteration regenerates the experiment's measurement at a reduced but
// shape-preserving scale; run cmd/cycloid-bench for the full paper-scale
// sweeps and formatted output.

import (
	"fmt"
	"testing"

	"cycloid/internal/experiments"
)

// benchSeed keeps benchmark workloads deterministic across runs.
const benchSeed = 42

func BenchmarkTable1Lookup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable1(benchSeed, 2000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5PathLength(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.RunPathLength(experiments.PathLengthOptions{
			Seed: benchSeed, LookupBudget: 20000,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.RunPathLength(experiments.PathLengthOptions{
			Seed: benchSeed, LookupBudget: 20000, Dims: []int{7, 8},
			DHTs: []string{"cycloid-7", "viceroy", "koorde"},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8KeyDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.RunKeyDistribution(experiments.KeyDistributionOptions{
			Nodes: 2000, Seed: benchSeed,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9KeyDistributionSparse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.RunKeyDistribution(experiments.KeyDistributionOptions{
			Nodes: 1000, Seed: benchSeed,
			DHTs: []string{"cycloid-7", "chord", "koorde"},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10QueryLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.RunQueryLoad(experiments.QueryLoadOptions{
			Seed: benchSeed, LookupBudget: 20000,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11MassDeparture(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.RunFailures(experiments.FailureOptions{
			Seed: benchSeed, Lookups: 2000, Probs: []float64{0.1, 0.3, 0.5},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12Churn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.RunChurn(experiments.ChurnOptions{
			Seed: benchSeed, Lookups: 1000, Rates: []float64{0.05, 0.40},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13Sparsity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.RunSparsity(experiments.SparsityOptions{
			Seed: benchSeed, Lookups: 2000,
			Sparsities: []float64{0, 0.5, 0.9},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14KoordeBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.RunSparsity(experiments.SparsityOptions{
			Seed: benchSeed, Lookups: 2000, DHTs: []string{"koorde"},
			Sparsities: []float64{0, 0.5, 0.9},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationLeafSet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.RunAblationLeafSet(experiments.AblationLeafSetOptions{
			Seed: benchSeed, LookupBudget: 10000,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationStabilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.RunAblationStabilization(experiments.AblationStabilizationOptions{
			Seed: benchSeed, Lookups: 800, Intervals: []float64{10, 60},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUngracefulFailures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.RunUngraceful(experiments.UngracefulOptions{
			Seed: benchSeed, Lookups: 1000, Probs: []float64{0.2, 0.5},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLookup measures a single Cycloid lookup on the paper's
// 2048-node network — the library's core hot path.
func BenchmarkLookup(b *testing.B) {
	d, err := Bootstrap(2048, Options{Dim: 8, Seed: benchSeed})
	if err != nil {
		b.Fatal(err)
	}
	nodes := d.Nodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Lookup(nodes[i%len(nodes)], fmt.Sprintf("key-%d", i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPutGet measures the key/value layer end to end.
func BenchmarkPutGet(b *testing.B) {
	d, err := Bootstrap(1024, Options{Dim: 8, Seed: benchSeed})
	if err != nil {
		b.Fatal(err)
	}
	from := d.Nodes()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("bench-%d", i%4096)
		if err := d.Put(key, []byte("v")); err != nil {
			b.Fatal(err)
		}
		if _, _, err := d.Get(from, key); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJoinLeave measures the churn protocol cost.
func BenchmarkJoinLeave(b *testing.B) {
	d, err := Bootstrap(512, Options{Dim: 8, Seed: benchSeed})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, err := d.Join()
		if err != nil {
			b.Fatal(err)
		}
		if err := d.Leave(id); err != nil {
			b.Fatal(err)
		}
	}
}
