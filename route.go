package cycloid

import (
	"fmt"
	"strings"

	"cycloid/internal/ids"
	"cycloid/internal/overlay"
)

// Phase labels a routing hop with the algorithm phase that produced it.
type Phase string

// The three phases of the Cycloid lookup algorithm (Section 3.2).
const (
	Ascending  Phase = "ascending"
	Descending Phase = "descending"
	Traverse   Phase = "traverse"
)

// Hop is one forwarding step of a lookup.
type Hop struct {
	From  NodeID
	To    NodeID
	Phase Phase
}

// Route is the path a lookup took through the overlay.
type Route struct {
	Key      string
	Source   NodeID
	Terminal NodeID // the node responsible for the key
	Hops     []Hop
	Timeouts int // departed nodes contacted along the way
}

func newRoute(space ids.Space, key string, res overlay.Result) Route {
	r := Route{
		Key:      key,
		Source:   space.FromLinear(res.Source),
		Terminal: space.FromLinear(res.Terminal),
		Timeouts: res.Timeouts,
	}
	if len(res.Hops) > 0 {
		r.Hops = make([]Hop, 0, len(res.Hops))
	}
	for _, h := range res.Hops {
		r.Hops = append(r.Hops, Hop{
			From:  space.FromLinear(h.From),
			To:    space.FromLinear(h.To),
			Phase: Phase(h.Phase.String()),
		})
	}
	return r
}

// PathLength returns the number of hops traversed.
func (r Route) PathLength() int { return len(r.Hops) }

// PhaseHops returns how many hops belong to the given phase.
func (r Route) PhaseHops(p Phase) int {
	n := 0
	for _, h := range r.Hops {
		if h.Phase == p {
			n++
		}
	}
	return n
}

// String renders the route as "src -[phase]-> ... -> terminal".
func (r Route) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v", r.Source)
	for _, h := range r.Hops {
		fmt.Fprintf(&b, " -[%s]-> %v", h.Phase, h.To)
	}
	if len(r.Hops) == 0 {
		fmt.Fprintf(&b, " (holds the key)")
	}
	return b.String()
}
