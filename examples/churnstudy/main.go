// Churnstudy: measure how Cycloid behaves while nodes continuously join
// and leave — the dynamic-network scenario of Section 4.4 — using only the
// public API. Prints lookup quality with and without stabilization.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cycloid"
)

func main() {
	dht, err := cycloid.Bootstrap(800, cycloid.Options{Dim: 8, Seed: 23})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))

	// Seed the store so lookups have something to find.
	const items = 300
	for i := 0; i < items; i++ {
		if err := dht.Put(key(i), []byte{1}); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("start: %d nodes, %d stored items\n\n", dht.Size(), items)
	fmt.Println("round  nodes  found   mean-hops  timeouts/lookup")
	for round := 1; round <= 10; round++ {
		// Churn burst: 40 joins and 40 graceful leaves.
		for i := 0; i < 40; i++ {
			if _, err := dht.Join(); err != nil {
				log.Fatal(err)
			}
			nodes := dht.Nodes()
			if err := dht.Leave(nodes[rng.Intn(len(nodes))]); err != nil {
				log.Fatal(err)
			}
		}

		// Probe without stabilizing: leaf sets keep lookups exact, stale
		// routing-table entries cost timeouts.
		found, hops, timeouts := probe(dht, rng)
		fmt.Printf("%4d   %4d   %d/%d   %8.2f   %.3f\n",
			round, dht.Size(), found, items, hops, timeouts)

		// Periodic stabilization repairs the routing tables, as every
		// node does once per 30s in the paper's setup.
		if round%3 == 0 {
			dht.Stabilize()
			found, hops, timeouts = probe(dht, rng)
			fmt.Printf("       (stabilized)  %d/%d   %8.2f   %.3f\n", found, items, hops, timeouts)
		}
	}
}

func probe(dht *cycloid.DHT, rng *rand.Rand) (found int, meanHops, meanTimeouts float64) {
	nodes := dht.Nodes()
	totalHops, totalTimeouts, lookups := 0, 0, 0
	for i := 0; i < 300; i++ {
		from := nodes[rng.Intn(len(nodes))]
		_, route, err := dht.Get(from, key(i))
		if err == nil {
			found++
		} else if err != cycloid.ErrNotFound {
			log.Fatal(err)
		}
		totalHops += route.PathLength()
		totalTimeouts += route.Timeouts
		lookups++
	}
	return found, float64(totalHops) / float64(lookups), float64(totalTimeouts) / float64(lookups)
}

func key(i int) string { return fmt.Sprintf("object-%04d", i) }
