// Livecluster: boot a real Cycloid overlay of TCP nodes on localhost,
// store and fetch values across the wire, then kill a third of the nodes
// ungracefully and watch stabilization repair the overlay — the deployed
// counterpart of the simulation experiments.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"cycloid/internal/ids"
	"cycloid/p2p"
)

func main() {
	const dim, size = 6, 20
	space := ids.NewSpace(dim)
	rng := rand.New(rand.NewSource(42))

	// Boot the overlay: the first node stands alone, the rest join
	// through a random live member, exactly like real deployments.
	fmt.Printf("booting %d TCP nodes (dimension %d, ID space %d)...\n", size, dim, space.Size())
	var nodes []*p2p.Node
	taken := map[uint64]bool{}
	for len(nodes) < size {
		v := uint64(rng.Int63n(int64(space.Size())))
		if taken[v] {
			continue
		}
		taken[v] = true
		id := space.FromLinear(v)
		node, err := p2p.Start(p2p.Config{Dim: dim, ID: &id, DialTimeout: time.Second})
		if err != nil {
			log.Fatal(err)
		}
		if len(nodes) > 0 {
			if err := node.Join(nodes[rng.Intn(len(nodes))].Addr()); err != nil {
				log.Fatal(err)
			}
		}
		nodes = append(nodes, node)
	}
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	for round := 0; round < 2; round++ {
		for _, n := range nodes {
			n.Stabilize()
		}
	}
	first := nodes[0]
	fmt.Printf("overlay up; node 0 is (%d,%0*b) on %s\n\n", first.ID().K, dim, first.ID().A, first.Addr())

	// Store values through one node, read them through others.
	for i := 0; i < 8; i++ {
		if err := nodes[i%size].Put(key(i), []byte(fmt.Sprintf("payload-%d", i))); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("reads over the wire:")
	for i := 0; i < 8; i++ {
		val, route, err := nodes[(i*3+1)%size].Get(key(i))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s = %-12s owner (%d,%0*b), %d hops\n",
			key(i), val, route.Terminal.K, dim, route.Terminal.A, route.Hops)
	}

	// Kill a third of the overlay without notifications.
	fmt.Println("\nkilling 6 nodes ungracefully...")
	var live []*p2p.Node
	for i, n := range nodes {
		if i%3 == 2 {
			n.Close()
		} else {
			live = append(live, n)
		}
	}
	timeouts := 0
	for i := 0; i < 10; i++ {
		if r, err := live[i%len(live)].Lookup(key(i)); err == nil {
			timeouts += r.Timeouts
		}
	}
	fmt.Printf("lookups immediately after: %d dial timeouts observed\n", timeouts)

	fmt.Println("running stabilization rounds...")
	for round := 0; round < 3; round++ {
		for _, n := range live {
			n.Stabilize()
		}
	}
	ok := 0
	for i := 0; i < 10; i++ {
		if r, err := live[i%len(live)].Lookup(key(i)); err == nil && r.Timeouts == 0 {
			ok++
		}
	}
	fmt.Printf("after repair: %d/10 lookups clean (no timeouts)\n", ok)
}

func key(i int) string { return fmt.Sprintf("object-%d", i) }
