// Filesearch: the workload the paper's introduction motivates — a
// peer-to-peer file-sharing index. Peers publish file metadata into the
// DHT; any peer locates any file in O(d) hops with exact-match lookups,
// the deterministic location guarantee unstructured networks (Gnutella,
// Freenet) cannot give.
package main

import (
	"fmt"
	"log"

	"cycloid"
)

type fileMeta struct {
	name string
	peer string
	size int
}

func main() {
	dht, err := cycloid.Bootstrap(1000, cycloid.Options{Dim: 8, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("file-sharing overlay: %d peers\n\n", dht.Size())

	// Each peer publishes its shared files under "file/<name>" keys.
	library := []fileMeta{
		{"ubuntu-4.10.iso", "peer-17", 600 << 20},
		{"etree/gd1977-05-08.flac", "peer-204", 900 << 20},
		{"papers/cycloid-ipdps04.pdf", "peer-42", 310 << 10},
		{"papers/chord-sigcomm01.pdf", "peer-42", 250 << 10},
		{"kernel/linux-2.6.7.tar.bz2", "peer-380", 34 << 20},
	}
	for _, f := range library {
		record := fmt.Sprintf("%s|%d", f.peer, f.size)
		if err := dht.Put("file/"+f.name, []byte(record)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("published %d file records\n\n", len(library))

	// Any peer can now find any file: exact-match lookup, no flooding.
	searcher := dht.Nodes()[123]
	totalHops := 0
	for _, f := range library {
		value, route, err := dht.Get(searcher, "file/"+f.name)
		if err != nil {
			log.Fatalf("lookup %s: %v", f.name, err)
		}
		totalHops += route.PathLength()
		fmt.Printf("%-34s -> %-10s (%d hops)\n", f.name, string(value), route.PathLength())
	}
	fmt.Printf("\nmean hops per search: %.1f (O(d) with d=%d; compare flooding's exponential message count)\n",
		float64(totalHops)/float64(len(library)), dht.Dim())

	// A peer departs gracefully; its records move to the new owners and
	// remain findable.
	leaver, _ := dht.Owner("file/ubuntu-4.10.iso")
	if err := dht.Leave(leaver); err != nil {
		log.Fatal(err)
	}
	value, route, err := dht.Get(searcher, "file/ubuntu-4.10.iso")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter the owner departed: record %q still found in %d hops (timeouts: %d)\n",
		string(value), route.PathLength(), route.Timeouts)
}
