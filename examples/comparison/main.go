// Comparison: a condensed version of the paper's headline comparison,
// driven through the experiment harness — mean lookup path length of the
// three constant-degree DHTs (Cycloid, Viceroy, Koorde) plus Chord as the
// O(log n)-state reference, at increasing network sizes.
package main

import (
	"fmt"
	"log"
	"os"

	"cycloid/internal/experiments"
)

func main() {
	fmt.Println("constant-degree DHT comparison (reduced Figure 5/6 sweep)")
	fmt.Println("n = d*2^d nodes per dimension; every node issues random lookups")
	fmt.Println()

	res, err := experiments.RunPathLength(experiments.PathLengthOptions{
		Dims:         []int{4, 5, 6, 7, 8},
		LookupBudget: 50000,
		Seed:         1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := res.Fig5Table().WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	// The per-phase view explains the gap: Cycloid's ascending phase is a
	// single outside-leaf hop, Viceroy climbs half its levels.
	for _, dht := range []string{"cycloid-7", "viceroy"} {
		if _, err := res.Fig7Table(dht).WriteTo(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	last := len(res.Dims) - 1
	cy := res.Cells["cycloid-7"][last].MeanPath
	vi := res.Cells["viceroy"][last].MeanPath
	ko := res.Cells["koorde"][last].MeanPath
	fmt.Printf("at n=2048: cycloid %.1f hops, koorde %.1f, viceroy %.1f (%.1fx cycloid)\n",
		cy, ko, vi, vi/cy)
}
