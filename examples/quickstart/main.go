// Quickstart: bootstrap a Cycloid overlay, store a value, and follow a
// lookup through the three routing phases.
package main

import (
	"fmt"
	"log"

	"cycloid"
)

func main() {
	// A d=8 Cycloid has a 2048-position ID space — the configuration the
	// paper evaluates. Bootstrap 500 nodes with converged routing tables.
	dht, err := cycloid.Bootstrap(500, cycloid.Options{Dim: 8, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d nodes, dimension %d, 7 routing entries per node\n\n",
		dht.Size(), dht.Dim())

	// Store a value; it lands on the node whose ID is numerically closest
	// to the key's (cyclic, cubical) hash.
	if err := dht.Put("alice/readme.txt", []byte("hello, overlay")); err != nil {
		log.Fatal(err)
	}
	owner, _ := dht.Owner("alice/readme.txt")
	fmt.Printf("key %q is stored on node (%d,%08b)\n\n", "alice/readme.txt", owner.K, owner.A)

	// Fetch it from an arbitrary node and show the route: ascending
	// (raise the cyclic index via the outside leaf set), descending
	// (correct cubical bits), traverse (close in through leaf sets).
	from := dht.Nodes()[0]
	value, route, err := dht.Get(from, "alice/readme.txt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lookup from (%d,%08b) took %d hops:\n", from.K, from.A, route.PathLength())
	for _, hop := range route.Hops {
		fmt.Printf("  -[%-10s]-> (%d,%08b)\n", hop.Phase, hop.To.K, hop.To.A)
	}
	fmt.Printf("value: %q\n\n", value)

	// Every node holds just seven entries; print the route target's table.
	table, err := dht.RoutingTable(route.Terminal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(table)
}
